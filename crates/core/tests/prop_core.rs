//! Property-based tests for the DeepRest core pipeline: feature extraction
//! (Alg. 1-2), the trace synthesizer, and model serialization.

use deeprest_core::{DeepRest, DeepRestConfig, FeatureSpace, OptimizerKind, TraceSynthesizer};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::{Interner, SpanNode, Trace};
use deeprest_workload::ApiTraffic;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small alphabet interner and a family of trace shapes over it.
fn shapes(i: &mut Interner) -> Vec<Trace> {
    let f = i.intern("Frontend");
    let s1 = i.intern("SvcA");
    let s2 = i.intern("SvcB");
    let m = i.intern("Mongo");
    let op = i.intern("op");
    let api_a = i.intern("/a");
    let api_b = i.intern("/b");
    vec![
        Trace::new(api_a, SpanNode::leaf(f, op)),
        Trace::new(
            api_a,
            SpanNode::with_children(f, op, vec![SpanNode::leaf(s1, op)]),
        ),
        Trace::new(
            api_b,
            SpanNode::with_children(
                f,
                op,
                vec![
                    SpanNode::leaf(s2, op),
                    SpanNode::with_children(s1, op, vec![SpanNode::leaf(m, op)]),
                ],
            ),
        ),
        Trace::new(
            api_b,
            SpanNode::with_children(f, op, vec![SpanNode::leaf(m, op)]),
        ),
    ]
}

fn windows_from(choices: &[usize], per_window: usize) -> (Interner, WindowedTraces) {
    let mut i = Interner::new();
    let family = shapes(&mut i);
    let count = choices.len() / per_window.max(1) + 1;
    let mut w = WindowedTraces::with_windows(1.0, count);
    for (k, &c) in choices.iter().enumerate() {
        w.windows[k / per_window.max(1)].push(family[c % family.len()].clone());
    }
    (i, w)
}

/// Fits a miniature one-API model (one component, CPU + memory metrics).
fn tiny_fit(hidden: usize, epochs: usize, seed: u64, adam: bool) -> DeepRest {
    let mut i = Interner::new();
    let f = i.intern("Frontend");
    let read = i.intern("read");
    let api = i.intern("/read");
    let windows = 24;
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut cpu = TimeSeries::zeros(0);
    let mut mem = TimeSeries::zeros(0);
    for t in 0..windows {
        let count = 2 + ((t % 8) as i32 - 4).unsigned_abs() as usize;
        for _ in 0..count {
            traces.windows[t].push(Trace::new(api, SpanNode::leaf(f, read)));
        }
        cpu.push(2.0 + 1.5 * count as f64);
        mem.push(64.0 + 0.5 * count as f64);
    }
    let mut metrics = MetricsRegistry::new();
    metrics.insert(MetricKey::new("Frontend", ResourceKind::Cpu), cpu);
    metrics.insert(MetricKey::new("Frontend", ResourceKind::Memory), mem);
    let config = DeepRestConfig {
        hidden_dim: hidden,
        epochs,
        subseq_len: 8,
        batch_size: 2,
        ..DeepRestConfig::default()
    }
    .with_seed(seed)
    .with_optimizer(if adam {
        OptimizerKind::Adam { lr: 0.005 }
    } else {
        OptimizerKind::Sgd {
            lr: 0.01,
            momentum: 0.9,
        }
    });
    DeepRest::fit(&traces, &metrics, &i, config).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn json_round_trip_preserves_the_model_bit_for_bit(
        hidden in 2usize..6,
        epochs in 1usize..4,
        seed in 0u64..1000,
        adam in any::<bool>(),
    ) {
        let model = tiny_fit(hidden, epochs, seed, adam);
        let json = model.to_json().expect("serialize");
        let restored = DeepRest::from_json(&json).expect("deserialize");

        // Every parameter tensor survives the round trip bitwise.
        let before = model.parameters();
        let after = restored.parameters();
        prop_assert_eq!(before.len(), after.len());
        for ((bn, bv), (an, av)) in before.iter().zip(after.iter()) {
            prop_assert_eq!(bn, an);
            prop_assert_eq!(bv.len(), av.len(), "parameter {} changed shape", bn);
            for (x, y) in bv.iter().zip(av.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "parameter {} bit-diverged", bn);
            }
        }

        // And the restored model answers what-if queries identically.
        let traffic = ApiTraffic::new(
            vec!["/read".into()],
            6,
            (0..6).map(|t| vec![2.0 + f64::from(t)]).collect(),
        );
        let es = model.estimate_traffic(&traffic, 7);
        let er = restored.estimate_traffic(&traffic, 7);
        prop_assert_eq!(es.len(), er.len());
        for ((ks, ps), (kr, pr)) in es.iter().zip(er.iter()) {
            prop_assert_eq!(ks, kr);
            prop_assert_eq!(ps.expected.values(), pr.expected.values());
            prop_assert_eq!(ps.lower.values(), pr.lower.values());
            prop_assert_eq!(ps.upper.values(), pr.upper.values());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extraction_is_additive_over_trace_multisets(
        choices in proptest::collection::vec(0usize..4, 1..40),
    ) {
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        // Extracting the union equals the sum of extracting each window.
        let all: Vec<Trace> = traces.iter_all().cloned().collect();
        let whole = space.extract(&all);
        let mut summed = vec![0.0f32; space.dim()];
        for t in 0..traces.len() {
            for (acc, v) in summed.iter_mut().zip(space.extract(traces.window(t))) {
                *acc += v;
            }
        }
        prop_assert_eq!(whole, summed);
    }

    #[test]
    fn total_feature_mass_equals_total_span_count(
        choices in proptest::collection::vec(0usize..4, 1..40),
    ) {
        // Every span contributes exactly one root-prefix path occurrence.
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        let spans: usize = traces.iter_all().map(Trace::span_count).sum();
        let mass: f32 = (0..traces.len())
            .map(|t| space.extract(traces.window(t)).iter().sum::<f32>())
            .sum();
        prop_assert_eq!(mass as usize, spans);
    }

    #[test]
    fn feature_dim_counts_distinct_prefix_paths(
        choices in proptest::collection::vec(0usize..4, 4..40),
    ) {
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        // The family of 4 shapes has at most 7 distinct root prefixes.
        prop_assert!(space.dim() <= 7);
        prop_assert!(space.dim() >= 1);
    }

    #[test]
    fn synthesizer_preserves_per_api_shape_support(
        choices in proptest::collection::vec(0usize..4, 8..60),
        seed in any::<u64>(),
    ) {
        let (i, traces) = windows_from(&choices, 8);
        let synth = TraceSynthesizer::learn(&traces);
        let mut rng = StdRng::seed_from_u64(seed);
        for api in synth.known_apis() {
            let learned: std::collections::HashSet<Vec<u64>> = traces
                .iter_all()
                .filter(|t| t.api == api)
                .map(Trace::canonical_key)
                .collect();
            let sampled = synth.synthesize_api(api, 64, &mut rng);
            for t in sampled {
                prop_assert_eq!(t.api, api);
                prop_assert!(
                    learned.contains(&t.canonical_key()),
                    "synthesized a shape never observed for {}",
                    i.resolve(api)
                );
            }
        }
    }

    #[test]
    fn synthesized_volume_matches_query_expectations(
        volumes in proptest::collection::vec(0.0f64..30.0, 1..12),
        seed in any::<u64>(),
    ) {
        let (i, traces) = windows_from(&[0, 1, 2, 3, 0, 1, 2, 3], 8);
        let synth = TraceSynthesizer::learn(&traces);
        let traffic = deeprest_workload::ApiTraffic::new(
            vec!["/a".into()],
            volumes.len(),
            volumes.iter().map(|&v| vec![v]).collect(),
        );
        let out = synth.synthesize(&traffic, &i, seed);
        for (t, &expected) in volumes.iter().enumerate() {
            let n = out.window(t).len() as f64;
            // Stochastic rounding keeps counts within 1 of the expectation.
            prop_assert!((n - expected).abs() <= 1.0, "window {}: {} vs {}", t, n, expected);
        }
    }
}
