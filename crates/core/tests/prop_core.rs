//! Property-based tests for the DeepRest core pipeline pieces that do not
//! require training: feature extraction (Alg. 1-2) and the trace
//! synthesizer.

use deeprest_core::{FeatureSpace, TraceSynthesizer};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::{Interner, SpanNode, Trace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small alphabet interner and a family of trace shapes over it.
fn shapes(i: &mut Interner) -> Vec<Trace> {
    let f = i.intern("Frontend");
    let s1 = i.intern("SvcA");
    let s2 = i.intern("SvcB");
    let m = i.intern("Mongo");
    let op = i.intern("op");
    let api_a = i.intern("/a");
    let api_b = i.intern("/b");
    vec![
        Trace::new(api_a, SpanNode::leaf(f, op)),
        Trace::new(
            api_a,
            SpanNode::with_children(f, op, vec![SpanNode::leaf(s1, op)]),
        ),
        Trace::new(
            api_b,
            SpanNode::with_children(
                f,
                op,
                vec![
                    SpanNode::leaf(s2, op),
                    SpanNode::with_children(s1, op, vec![SpanNode::leaf(m, op)]),
                ],
            ),
        ),
        Trace::new(
            api_b,
            SpanNode::with_children(f, op, vec![SpanNode::leaf(m, op)]),
        ),
    ]
}

fn windows_from(choices: &[usize], per_window: usize) -> (Interner, WindowedTraces) {
    let mut i = Interner::new();
    let family = shapes(&mut i);
    let count = choices.len() / per_window.max(1) + 1;
    let mut w = WindowedTraces::with_windows(1.0, count);
    for (k, &c) in choices.iter().enumerate() {
        w.windows[k / per_window.max(1)].push(family[c % family.len()].clone());
    }
    (i, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extraction_is_additive_over_trace_multisets(
        choices in proptest::collection::vec(0usize..4, 1..40),
    ) {
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        // Extracting the union equals the sum of extracting each window.
        let all: Vec<Trace> = traces.iter_all().cloned().collect();
        let whole = space.extract(&all);
        let mut summed = vec![0.0f32; space.dim()];
        for t in 0..traces.len() {
            for (acc, v) in summed.iter_mut().zip(space.extract(traces.window(t))) {
                *acc += v;
            }
        }
        prop_assert_eq!(whole, summed);
    }

    #[test]
    fn total_feature_mass_equals_total_span_count(
        choices in proptest::collection::vec(0usize..4, 1..40),
    ) {
        // Every span contributes exactly one root-prefix path occurrence.
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        let spans: usize = traces.iter_all().map(Trace::span_count).sum();
        let mass: f32 = (0..traces.len())
            .map(|t| space.extract(traces.window(t)).iter().sum::<f32>())
            .sum();
        prop_assert_eq!(mass as usize, spans);
    }

    #[test]
    fn feature_dim_counts_distinct_prefix_paths(
        choices in proptest::collection::vec(0usize..4, 4..40),
    ) {
        let (_, traces) = windows_from(&choices, 8);
        let space = FeatureSpace::construct(&traces);
        // The family of 4 shapes has at most 7 distinct root prefixes.
        prop_assert!(space.dim() <= 7);
        prop_assert!(space.dim() >= 1);
    }

    #[test]
    fn synthesizer_preserves_per_api_shape_support(
        choices in proptest::collection::vec(0usize..4, 8..60),
        seed in any::<u64>(),
    ) {
        let (i, traces) = windows_from(&choices, 8);
        let synth = TraceSynthesizer::learn(&traces);
        let mut rng = StdRng::seed_from_u64(seed);
        for api in synth.known_apis() {
            let learned: std::collections::HashSet<Vec<u64>> = traces
                .iter_all()
                .filter(|t| t.api == api)
                .map(Trace::canonical_key)
                .collect();
            let sampled = synth.synthesize_api(api, 64, &mut rng);
            for t in sampled {
                prop_assert_eq!(t.api, api);
                prop_assert!(
                    learned.contains(&t.canonical_key()),
                    "synthesized a shape never observed for {}",
                    i.resolve(api)
                );
            }
        }
    }

    #[test]
    fn synthesized_volume_matches_query_expectations(
        volumes in proptest::collection::vec(0.0f64..30.0, 1..12),
        seed in any::<u64>(),
    ) {
        let (i, traces) = windows_from(&[0, 1, 2, 3, 0, 1, 2, 3], 8);
        let synth = TraceSynthesizer::learn(&traces);
        let traffic = deeprest_workload::ApiTraffic::new(
            vec!["/a".into()],
            volumes.len(),
            volumes.iter().map(|&v| vec![v]).collect(),
        );
        let out = synth.synthesize(&traffic, &i, seed);
        for (t, &expected) in volumes.iter().enumerate() {
            let n = out.window(t).len() as f64;
            // Stochastic rounding keeps counts within 1 of the expectation.
            prop_assert!((n - expected).abs() <= 1.0, "window {}: {} vs {}", t, n, expected);
        }
    }
}
