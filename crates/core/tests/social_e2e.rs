//! End-to-end: DeepRest learns the simulated social network and estimates
//! unseen query traffic (the core claim C1 of the paper).

use deeprest_core::{sanity, DeepRest, DeepRestConfig};
use deeprest_metrics::eval::mape;
use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_sim::anomaly::CryptojackingAttack;
use deeprest_sim::apps;
use deeprest_sim::engine::{simulate, simulate_with, SimConfig};
use deeprest_workload::WorkloadSpec;

fn focus_scope() -> Vec<MetricKey> {
    let app = apps::social_network();
    apps::FOCUS_COMPONENTS
        .iter()
        .flat_map(|c| {
            let stateful = app.component(c).unwrap().stateful;
            ResourceKind::for_component(stateful)
                .iter()
                .map(|&r| MetricKey::new(*c, r))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn learns_social_network_and_generalizes() {
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(7)
        .with_windows_per_day(96)
        .generate();
    let cfg = SimConfig::default();
    let learn = simulate(&app, &learn_traffic, &cfg);

    let config = DeepRestConfig::default()
        .with_epochs(20)
        .with_scope(focus_scope());
    let start = std::time::Instant::now();
    let (model, report) = DeepRest::fit(&learn.traces, &learn.metrics, &learn.interner, config);
    eprintln!(
        "fit: {} experts, dim {}, {:.1}s, loss {:.4} -> {:.4}",
        report.expert_count,
        report.feature_dim,
        start.elapsed().as_secs_f64(),
        report.epoch_losses[0],
        report.epoch_losses.last().unwrap()
    );
    assert!(report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.8));

    // Unseen 2x-users query traffic, different seed, one day.
    let query_traffic = WorkloadSpec::new(240.0, app.default_mix())
        .with_days(1)
        .with_windows_per_day(96)
        .with_seed(555)
        .generate();
    let actual = simulate(&app, &query_traffic, &cfg.clone().with_seed(777));

    // Mode 2: estimate from the real query traces.
    let est = model.estimate_from_traces(&actual.traces, &actual.interner);
    for (comp, resource, budget) in [
        ("FrontendNGINX", ResourceKind::Cpu, 25.0),
        ("ComposePostService", ResourceKind::Cpu, 30.0),
        ("UserTimelineService", ResourceKind::Cpu, 30.0),
        ("PostStorageMongoDB", ResourceKind::WriteIops, 40.0),
    ] {
        let pred = est.get_parts(comp, resource).unwrap();
        let act = actual.metrics.get_parts(comp, resource).unwrap();
        let m = mape(act, &pred.expected);
        eprintln!("{comp}/{resource}: MAPE {m:.1}%");
        assert!(m < budget, "{comp}/{resource} MAPE {m:.1}% > {budget}%");
    }

    // Mode 1: estimate straight from traffic via the synthesizer.
    let est_syn = model.estimate_traffic(&query_traffic, 9);
    let pred = est_syn
        .get_parts("FrontendNGINX", ResourceKind::Cpu)
        .unwrap();
    let act = actual
        .metrics
        .get_parts("FrontendNGINX", ResourceKind::Cpu)
        .unwrap();
    let m = mape(act, &pred.expected);
    eprintln!("synthesized FrontendNGINX/cpu: MAPE {m:.1}%");
    assert!(m < 30.0, "synthesized MAPE {m:.1}%");

    // Sanity check: cryptojacking on the post store must be flagged; the
    // benign day must not drown in false alarms.
    let attack = CryptojackingAttack::new("PostStorageMongoDB", 48, 25.0);
    let attacked = simulate_with(
        &app,
        &query_traffic,
        &cfg.clone().with_seed(777),
        &[&attack],
    );
    let report = sanity::check(
        &model,
        &attacked.traces,
        &attacked.interner,
        &attacked.metrics,
        &sanity::SanityConfig::default(),
    );
    let scores = &report.per_resource[&MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu)];
    let pre: f64 = scores.slice(0..48).mean();
    let post: f64 = scores.slice(48..96).mean();
    eprintln!("cryptojacking score pre {pre:.4} post {post:.4}");
    assert!(
        post > 10.0 * (pre + 1e-6),
        "attack not separable: {pre} vs {post}"
    );
    assert!(!report.events.is_empty(), "no anomalous event extracted");
    let ev = &report.events[report.events.len() - 1];
    assert!(
        ev.start_window >= 40,
        "event starts too early: {}",
        ev.start_window
    );
    assert!(ev
        .findings
        .iter()
        .any(|f| f.component == "PostStorageMongoDB"
            && f.resource == ResourceKind::Cpu
            && f.deviation_pct > 0.0));
}
