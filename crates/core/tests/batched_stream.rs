//! The batched serving contract, end to end:
//!
//! * [`StreamPredictor`]'s fused batched step is **bit-identical** to the
//!   retained tape-based [`PerExpertPredictor`] and to the batch
//!   estimation path, across randomized expert counts (including a single
//!   expert), shard counts (worker-pool thread counts), and optimizers;
//! * sharding is state-isolating: poisoning one expert's hidden state
//!   never leaks into its shard neighbors, and the chunk-boundary reset
//!   heals the stream bit-exactly;
//! * snapshots are portable across shard plans — a 1-thread checkpoint
//!   resumes bit-identically under a multi-shard predictor;
//! * warm multi-shard serving performs zero kernel allocations and runs a
//!   constant kernel schedule per window (the O(1) telemetry invariant).

use std::sync::Arc;

use deeprest_core::stream::{PointEstimate, StreamPredictor};
use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_fault::{self as fault, FaultPlan};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_telemetry::{self as telemetry, MemorySink};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::{Interner, SpanNode, Trace};
use proptest::prelude::*;

/// A synthetic application with `components` services, each driven by its
/// own API at its own phase, yielding `2 * components` experts (CPU +
/// memory per component) — or one fewer when `drop_last_mem` trims the
/// last component to CPU only (this is how the single-expert case is
/// built).
fn dataset(
    windows: usize,
    components: usize,
    drop_last_mem: bool,
) -> (Interner, WindowedTraces, MetricsRegistry) {
    let mut i = Interner::new();
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut metrics = MetricsRegistry::new();
    for c in 0..components {
        let svc_name = format!("Svc{c}");
        let svc = i.intern(&svc_name);
        let op = i.intern(&format!("op{c}"));
        let api = i.intern(&format!("/api{c}"));
        let mut cpu = TimeSeries::zeros(0);
        let mut mem = TimeSeries::zeros(0);
        for t in 0..windows {
            let count = 2 + (t * (c + 3)) % 9;
            for _ in 0..count {
                traces.windows[t].push(Trace::new(api, SpanNode::leaf(svc, op)));
            }
            cpu.push(1.5 + (0.8 + 0.2 * c as f64) * count as f64);
            mem.push(48.0 + 0.4 * count as f64);
        }
        metrics.insert(MetricKey::new(&svc_name, ResourceKind::Cpu), cpu);
        if !(drop_last_mem && c == components - 1) {
            metrics.insert(MetricKey::new(&svc_name, ResourceKind::Memory), mem);
        }
    }
    (i, traces, metrics)
}

fn config(seed: u64, threads: usize) -> DeepRestConfig {
    DeepRestConfig {
        hidden_dim: 8,
        epochs: 2,
        subseq_len: 12,
        batch_size: 3,
        ..DeepRestConfig::default()
    }
    .with_seed(seed)
    .with_threads(threads)
}

fn assert_points_bitwise(a: &[PointEstimate], b: &[PointEstimate], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: expert count");
    for (e, (pa, pb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            pa.expected.to_bits(),
            pb.expected.to_bits(),
            "{ctx}: expected diverged at expert {e} ({} vs {})",
            pa.expected,
            pb.expected
        );
        assert_eq!(pa.lower.to_bits(), pb.lower.to_bits(), "{ctx}: expert {e}");
        assert_eq!(pa.upper.to_bits(), pb.upper.to_bits(), "{ctx}: expert {e}");
    }
}

proptest! {
    // Every case trains a model, so keep the case count low; the shapes
    // (expert count from 1 to 10, shard plans from 1 to 3 shards via the
    // thread count) are what matter, not value-space volume.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The central property: for any expert count and any shard plan, the
    /// batched step, the per-expert tape step, and the batch estimation
    /// path agree bit for bit on every window.
    #[test]
    fn batched_step_is_bitwise_identical_across_experts_and_shards(
        components in 1usize..6,
        drop_last_mem in any::<bool>(),
        threads in 1usize..5,
        seed in 0u64..100,
    ) {
        let (i, traces, metrics) = dataset(48, components, drop_last_mem);
        let (model, _) = DeepRest::fit(&traces, &metrics, &i, config(seed, threads));
        let keys = model.expert_keys();
        prop_assert_eq!(keys.len(), components * 2 - usize::from(drop_last_mem));

        let batch = model.estimate_from_traces(&traces, &i);
        let mut batched = model.stream_predictor();
        let mut reference = model.per_expert_predictor();
        for (t, window) in traces.windows.iter().enumerate() {
            let x = model.window_features(window, &i);
            let got = batched.step(&x);
            let want = reference.step(&x);
            assert_points_bitwise(&got, &want, &format!("window {t} vs tape"));
            for (e, key) in keys.iter().enumerate() {
                let series = batch.get(key).unwrap();
                prop_assert_eq!(
                    got[e].expected.to_bits(),
                    series.expected.get(t).to_bits(),
                    "window {} expert {} vs batch path", t, key
                );
            }
        }
    }
}

/// A 1-thread fit and a 4-thread fit are bit-identical (the training
/// determinism contract), and so are their streaming predictors — even
/// though one runs single-sharded and the other splits its 10 experts
/// into 2 shards. Snapshots cross between the two shard plans bitwise.
#[test]
fn shard_plan_never_changes_bits_and_snapshots_are_portable() {
    let (i, traces, metrics) = dataset(64, 5, false);
    let (serial, _) = DeepRest::fit(&traces, &metrics, &i, config(7, 1));
    let (sharded, _) = DeepRest::fit(&traces, &metrics, &i, config(7, 4));

    let xs: Vec<Vec<f32>> = traces
        .windows
        .iter()
        .map(|w| serial.window_features(w, &i))
        .collect();

    let mut one = serial.stream_predictor();
    let mut many = sharded.stream_predictor();
    assert_eq!(one.shard_count(), 1);
    assert_eq!(many.shard_count(), 2, "10 experts over 4 threads");

    let reference: Vec<_> = xs.iter().map(|x| one.step(x)).collect();
    for (t, x) in xs.iter().enumerate() {
        assert_points_bitwise(&many.step(x), &reference[t], &format!("window {t}"));
    }

    // Checkpoint under the single-shard plan, resume under the
    // multi-shard plan: continuation stays bitwise on the reference run.
    let mut source = serial.stream_predictor();
    for x in &xs[..23] {
        source.step(x);
    }
    let snap = source.snapshot();
    let mut resumed = StreamPredictor::restore(&sharded, &snap).unwrap();
    assert_eq!(resumed.shard_count(), 2);
    for (t, x) in xs.iter().enumerate().skip(23) {
        assert_points_bitwise(
            &resumed.step(x),
            &reference[t],
            &format!("resumed window {t}"),
        );
    }
}

/// Poison one expert's hidden state mid-batch: the damage must stay
/// confined to that expert's carried state (its shard neighbors keep
/// serving bit-identical numbers), and the next chunk-boundary reset
/// heals the whole stream back to the clean run.
#[test]
fn poisoned_expert_stays_isolated_inside_its_shard() {
    let (i, traces, metrics) = dataset(48, 5, false);
    // Attention off so output isolation is exact: with cross-expert
    // attention, one expert's NaN state deliberately taints every output
    // (that contamination is the serve layer's quarantine trigger and is
    // covered by its chaos suite).
    let cfg = DeepRestConfig {
        attention: false,
        ..config(11, 4)
    };
    let (model, _) = DeepRest::fit(&traces, &metrics, &i, cfg);
    let e_count = model.expert_keys().len();
    assert_eq!(e_count, 10);
    let xs: Vec<Vec<f32>> = traces
        .windows
        .iter()
        .map(|w| model.window_features(w, &i))
        .collect();

    let mut clean = model.stream_predictor();
    let reference: Vec<_> = xs.iter().map(|x| clean.step(x)).collect();

    // Poison expert 3 (inside the first shard of two) on window 5. The
    // subseq length is 12, so the reset at window 12 discards the poison.
    let victim = 3usize;
    let plan = Arc::new(
        FaultPlan::new(0)
            .once("stream.hidden", 5)
            .payload(victim as u64),
    );
    fault::with_plan(plan, || {
        let mut faulted = model.stream_predictor();
        assert_eq!(faulted.shard_count(), 2);
        for (t, x) in xs.iter().enumerate() {
            let got = faulted.step(x);
            if t < 6 {
                // Poison lands *after* window 5's outputs are computed.
                assert_points_bitwise(&got, &reference[t], &format!("window {t}"));
            }
            if (6..12).contains(&t) {
                assert_eq!(
                    faulted.hidden_nonfinite_experts(),
                    vec![victim],
                    "window {t}: poison must stay confined to the victim"
                );
                assert!(!faulted.hidden_is_finite());
                // Every *other* expert still serves the clean bits.
                for e in (0..e_count).filter(|&e| e != victim) {
                    assert_eq!(
                        got[e].expected.to_bits(),
                        reference[t][e].expected.to_bits(),
                        "window {t}: neighbor expert {e} contaminated"
                    );
                }
            }
            if t >= 12 {
                // Chunk reset zeroed the poisoned state: fully healed.
                assert!(faulted.hidden_is_finite());
                assert_points_bitwise(&got, &reference[t], &format!("healed window {t}"));
            }
        }
    });
}

/// Warm multi-shard serving allocates nothing and runs a constant batched
/// kernel schedule: `kernel.alloc` is flat after the first window at any
/// shard count, scratch reuse dominates, and the `stream.step.kernel_ops`
/// / `stream.batch.*` gauges are window-invariant.
#[test]
fn warm_multi_shard_steps_are_allocation_free_and_o1() {
    let (i, traces, metrics) = dataset(48, 5, false);
    let (model, _) = DeepRest::fit(&traces, &metrics, &i, config(3, 4));
    let xs: Vec<Vec<f32>> = traces
        .windows
        .iter()
        .map(|w| model.window_features(w, &i))
        .collect();

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        let mut predictor = model.stream_predictor();
        assert_eq!(predictor.shard_count(), 2);
        assert!(predictor.state_bytes() > 0);
        predictor.step(&xs[0]);
        let warm_allocs = sink.counter("kernel.alloc");
        assert!(warm_allocs > 0, "first window must fill the arenas");
        for x in &xs[1..] {
            predictor.step(x);
        }
        assert_eq!(
            sink.counter("kernel.alloc"),
            warm_allocs,
            "warm batched steps must perform zero kernel allocations"
        );
        assert!(
            sink.counter("kernel.scratch_reuse") > warm_allocs,
            "steady state must be dominated by scratch reuse"
        );
        assert_eq!(sink.counter("stream.steps"), xs.len() as u64);
    });

    let ops = sink.gauges("stream.step.kernel_ops");
    assert_eq!(ops.len(), xs.len());
    assert!(ops[0] > 0.0);
    assert!(
        ops.iter().all(|v| v.to_bits() == ops[0].to_bits()),
        "kernel schedule must be window-invariant"
    );
    let shards = sink.gauges("stream.batch.shards");
    assert!(shards.iter().all(|&v| v == 2.0));
    let experts = sink.gauges("stream.batch.experts");
    assert!(experts.iter().all(|&v| v == 10.0));
}
