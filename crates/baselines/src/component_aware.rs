//! The component-aware scaling baseline.

use std::collections::{BTreeMap, HashMap};

use deeprest_metrics::{MetricKey, TimeSeries};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::Interner;

use crate::{day_profile, BaselineEstimator, LearnData, QueryData};

/// Uses distributed traces to learn, per component, how many invocations it
/// receives, and scales *all* of the component's resources by the ratio of
/// expected query invocations to historical invocations at the same time of
/// day.
///
/// Flow-aware (it knows /readTimeline never triggers the
/// ComposePostService) but resource-blind within a component: a read-heavy
/// query that keeps a store busy inflates the store's write IOps estimate
/// too — the Fig. 11c overestimation the paper dissects.
#[derive(Debug, Default)]
pub struct ComponentAwareScaling {
    windows_per_day: usize,
    /// Historical per-component invocation day-profile.
    invocation_profiles: BTreeMap<String, Vec<f64>>,
    /// Mean invocations of each component per request of each API.
    per_api_rates: BTreeMap<String, HashMap<String, f64>>,
    utilization_profiles: BTreeMap<MetricKey, Vec<f64>>,
}

impl ComponentAwareScaling {
    /// Creates an unfitted instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts component invocations (spans) per window.
    fn count_invocations(
        traces: &WindowedTraces,
        interner: &Interner,
    ) -> BTreeMap<String, Vec<f64>> {
        let mut counts: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (t, window) in traces.windows.iter().enumerate() {
            for trace in window {
                trace.root.visit(&mut |span| {
                    counts
                        .entry(interner.resolve(span.component).to_owned())
                        .or_insert_with(|| vec![0.0; traces.len()])[t] += 1.0;
                });
            }
        }
        counts
    }
}

impl BaselineEstimator for ComponentAwareScaling {
    fn name(&self) -> &'static str {
        "component-aware-scaling"
    }

    fn fit(&mut self, data: &LearnData<'_>) {
        self.windows_per_day = data.traffic.windows_per_day();

        let invocations = Self::count_invocations(data.traces, data.interner);
        self.invocation_profiles = invocations
            .iter()
            .map(|(c, v)| (c.clone(), day_profile(v, self.windows_per_day)))
            .collect();

        // Invocations of each component attributable to each API, for
        // predicting query invocations from query traffic alone.
        let mut per_api_totals: BTreeMap<String, HashMap<String, f64>> = BTreeMap::new();
        let mut api_requests: HashMap<String, f64> = HashMap::new();
        for window in &data.traces.windows {
            for trace in window {
                let api = data.interner.resolve(trace.api).to_owned();
                *api_requests.entry(api.clone()).or_insert(0.0) += 1.0;
                trace.root.visit(&mut |span| {
                    *per_api_totals
                        .entry(data.interner.resolve(span.component).to_owned())
                        .or_default()
                        .entry(api.clone())
                        .or_insert(0.0) += 1.0;
                });
            }
        }
        self.per_api_rates = per_api_totals
            .into_iter()
            .map(|(comp, by_api)| {
                let rates = by_api
                    .into_iter()
                    .map(|(api, total)| {
                        let requests = api_requests.get(&api).copied().unwrap_or(1.0);
                        (api, total / requests.max(1.0))
                    })
                    .collect();
                (comp, rates)
            })
            .collect();

        self.utilization_profiles = data
            .metrics
            .iter()
            .map(|(key, series)| {
                (
                    key.clone(),
                    day_profile(series.values(), self.windows_per_day),
                )
            })
            .collect();
    }

    fn estimate(&self, query: &QueryData<'_>) -> BTreeMap<MetricKey, TimeSeries> {
        assert!(
            !self.utilization_profiles.is_empty(),
            "ComponentAwareScaling: estimate called before fit"
        );
        let windows = query.traffic.window_count();

        // Expected per-component invocations in the query period: counted
        // from real traces when available, otherwise predicted from the
        // query traffic through the learned per-API invocation rates.
        let query_invocations: BTreeMap<String, Vec<f64>> = match (query.traces, query.interner) {
            (Some(traces), Some(interner)) => Self::count_invocations(traces, interner),
            _ => {
                let apis: Vec<&String> = query.traffic.apis().iter().collect();
                self.per_api_rates
                    .iter()
                    .map(|(comp, rates)| {
                        let series: Vec<f64> = (0..windows)
                            .map(|t| {
                                apis.iter()
                                    .enumerate()
                                    .map(|(a, api)| {
                                        query.traffic.window(t)[a]
                                            * rates.get(*api).copied().unwrap_or(0.0)
                                    })
                                    .sum()
                            })
                            .collect();
                        (comp.clone(), series)
                    })
                    .collect()
            }
        };

        self.utilization_profiles
            .iter()
            .map(|(key, profile)| {
                let hist = self.invocation_profiles.get(&key.component);
                let inv = query_invocations.get(&key.component);
                let series: TimeSeries = (0..windows)
                    .map(|t| {
                        let base = profile[t % self.windows_per_day];
                        match (hist, inv) {
                            (Some(h), Some(q)) => {
                                let day_mean = h.iter().sum::<f64>() / h.len().max(1) as f64;
                                let denom =
                                    h[t % self.windows_per_day].max(0.05 * day_mean).max(1e-9);
                                base * (q[t] / denom)
                            }
                            // Component never invoked in learning or query:
                            // fall back to the historical profile.
                            _ => base,
                        }
                    })
                    .collect();
                (key.clone(), series)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeprest_metrics::{MetricsRegistry, ResourceKind};
    use deeprest_trace::{SpanNode, Trace};
    use deeprest_workload::ApiTraffic;

    /// Two APIs: /write triggers Store, /read does not.
    fn setup() -> (ApiTraffic, MetricsRegistry, WindowedTraces, Interner) {
        let mut i = Interner::new();
        let front = i.intern("Front");
        let store = i.intern("Store");
        let op = i.intern("op");
        let api_w = i.intern("/write");
        let api_r = i.intern("/read");

        let write_trace = Trace::new(
            api_w,
            SpanNode::with_children(front, op, vec![SpanNode::leaf(store, op)]),
        );
        let read_trace = Trace::new(api_r, SpanNode::leaf(front, op));

        // 4 windows: 5 writes + 5 reads per window.
        let mut traces = WindowedTraces::with_windows(1.0, 4);
        for w in &mut traces.windows {
            for _ in 0..5 {
                w.push(write_trace.clone());
                w.push(read_trace.clone());
            }
        }
        let traffic = ApiTraffic::new(
            vec!["/write".into(), "/read".into()],
            4,
            vec![vec![5.0, 5.0]; 4],
        );
        let mut metrics = MetricsRegistry::new();
        metrics.insert(
            MetricKey::new("Front", ResourceKind::Cpu),
            TimeSeries::from_values(vec![10.0; 4]),
        );
        metrics.insert(
            MetricKey::new("Store", ResourceKind::Cpu),
            TimeSeries::from_values(vec![6.0; 4]),
        );
        (traffic, metrics, traces, i)
    }

    fn fitted() -> (ComponentAwareScaling, ApiTraffic) {
        let (traffic, metrics, traces, interner) = setup();
        let mut b = ComponentAwareScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        (b, traffic)
    }

    #[test]
    fn read_only_query_does_not_scale_the_store() {
        let (b, _) = fitted();
        // Query: 10 reads, 0 writes per window — Front sees the same 10
        // invocations, Store sees none.
        let query = ApiTraffic::new(
            vec!["/write".into(), "/read".into()],
            4,
            vec![vec![0.0, 10.0]; 4],
        );
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let front = &est[&MetricKey::new("Front", ResourceKind::Cpu)];
        let store = &est[&MetricKey::new("Store", ResourceKind::Cpu)];
        assert!((front.mean() - 10.0).abs() < 1e-9, "front {}", front.mean());
        assert!(store.mean() < 1e-9, "store {}", store.mean());
    }

    #[test]
    fn write_heavy_query_scales_the_store() {
        let (b, _) = fitted();
        let query = ApiTraffic::new(
            vec!["/write".into(), "/read".into()],
            4,
            vec![vec![10.0, 0.0]; 4],
        );
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let store = &est[&MetricKey::new("Store", ResourceKind::Cpu)];
        // 10 write-invocations vs historical 5 → 2x.
        assert!((store.mean() - 12.0).abs() < 1e-9, "store {}", store.mean());
    }

    #[test]
    fn real_query_traces_override_traffic_prediction() {
        let (b, traffic) = fitted();
        let (_, _, traces, interner) = setup();
        // Same traces as learning → ratio 1 → profiles unchanged.
        let est = b.estimate(&QueryData {
            traffic: &traffic,
            traces: Some(&traces),
            interner: Some(&interner),
        });
        let front = &est[&MetricKey::new("Front", ResourceKind::Cpu)];
        assert!((front.mean() - 10.0).abs() < 1e-9);
    }
}
