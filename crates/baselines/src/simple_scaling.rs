//! The simple-scaling baseline.

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, TimeSeries};

use crate::{day_profile, BaselineEstimator, LearnData, QueryData};

/// Scales every resource of every component by the same per-window factor:
/// the total query request volume relative to the historical volume at the
/// same time of day.
///
/// This is traffic-volume-aware (so it tracks bursts and shape changes) but
/// completely flow-blind: a /readTimeline-dominated query scales write IOps
/// just as hard as CPU, the failure mode Fig. 11 dissects.
#[derive(Debug, Default)]
pub struct SimpleScaling {
    windows_per_day: usize,
    traffic_profile: Vec<f64>,
    utilization_profiles: BTreeMap<MetricKey, Vec<f64>>,
}

impl SimpleScaling {
    /// Creates an unfitted instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BaselineEstimator for SimpleScaling {
    fn name(&self) -> &'static str {
        "simple-scaling"
    }

    fn fit(&mut self, data: &LearnData<'_>) {
        self.windows_per_day = data.traffic.windows_per_day();
        self.traffic_profile =
            day_profile(data.traffic.total_series().values(), self.windows_per_day);
        self.utilization_profiles = data
            .metrics
            .iter()
            .map(|(key, series)| {
                (
                    key.clone(),
                    day_profile(series.values(), self.windows_per_day),
                )
            })
            .collect();
    }

    fn estimate(&self, query: &QueryData<'_>) -> BTreeMap<MetricKey, TimeSeries> {
        assert!(
            !self.traffic_profile.is_empty(),
            "SimpleScaling: estimate called before fit"
        );
        // Floor the historical denominator to avoid night-window blow-ups.
        let floor = 0.05
            * (self.traffic_profile.iter().sum::<f64>() / self.traffic_profile.len() as f64)
                .max(1e-9);
        let ratios: Vec<f64> = (0..query.traffic.window_count())
            .map(|t| {
                let hist = self.traffic_profile[t % self.windows_per_day].max(floor);
                query.traffic.total_at(t) / hist
            })
            .collect();

        self.utilization_profiles
            .iter()
            .map(|(key, profile)| {
                let series: TimeSeries = ratios
                    .iter()
                    .enumerate()
                    .map(|(t, &r)| profile[t % self.windows_per_day] * r)
                    .collect();
                (key.clone(), series)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeprest_metrics::{MetricsRegistry, ResourceKind};
    use deeprest_trace::window::WindowedTraces;
    use deeprest_trace::Interner;
    use deeprest_workload::ApiTraffic;

    fn setup() -> (ApiTraffic, MetricsRegistry, WindowedTraces, Interner) {
        // 1 day of 4 windows, 10 requests each; CPU tracks traffic 1:1.
        let traffic = ApiTraffic::new(
            vec!["/a".into()],
            4,
            vec![vec![10.0], vec![20.0], vec![10.0], vec![5.0]],
        );
        let mut metrics = MetricsRegistry::new();
        metrics.insert(
            MetricKey::new("C", ResourceKind::Cpu),
            TimeSeries::from_values(vec![10.0, 20.0, 10.0, 5.0]),
        );
        metrics.insert(
            MetricKey::new("C", ResourceKind::WriteIops),
            TimeSeries::from_values(vec![1.0, 2.0, 1.0, 0.5]),
        );
        (
            traffic,
            metrics,
            WindowedTraces::with_windows(1.0, 4),
            Interner::new(),
        )
    }

    #[test]
    fn doubling_traffic_doubles_everything() {
        let (traffic, metrics, traces, interner) = setup();
        let mut b = SimpleScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        let query = traffic.scale(2.0);
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let cpu = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        assert_eq!(cpu.values(), &[20.0, 40.0, 20.0, 10.0]);
        // The flow-blind failure: IOps also scale by 2 regardless of which
        // API grew.
        let iops = &est[&MetricKey::new("C", ResourceKind::WriteIops)];
        assert_eq!(iops.values(), &[2.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn shape_change_tracks_query_traffic() {
        let (traffic, metrics, traces, interner) = setup();
        let mut b = SimpleScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        // Flat query: 10 requests every window.
        let query = ApiTraffic::new(vec!["/a".into()], 4, vec![vec![10.0]; 4]);
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let cpu = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        // Profile × ratio = flat 10 everywhere.
        for &v in cpu.values() {
            assert!((v - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_day_history_averages_into_one_profile() {
        // Two days with different levels: the profile is their mean, so a
        // query at the mean level reproduces the mean utilization.
        let traffic = ApiTraffic::new(
            vec!["/a".into()],
            2,
            vec![vec![10.0], vec![20.0], vec![30.0], vec![40.0]],
        );
        let mut metrics = MetricsRegistry::new();
        metrics.insert(
            MetricKey::new("C", ResourceKind::Cpu),
            TimeSeries::from_values(vec![10.0, 20.0, 30.0, 40.0]),
        );
        let traces = WindowedTraces::with_windows(1.0, 4);
        let interner = Interner::new();
        let mut b = SimpleScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        // Profile window 0 = mean(10, 30) = 20; query 20 → ratio 1 → 20.
        let query = ApiTraffic::new(vec!["/a".into()], 2, vec![vec![20.0], vec![30.0]]);
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let cpu = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        assert!((cpu.get(0) - 20.0).abs() < 1e-9);
        assert!((cpu.get(1) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn night_window_denominator_is_floored() {
        // Historical window 1 has (near-)zero traffic; a query against it
        // must divide by the floored denominator, not explode.
        let traffic = ApiTraffic::new(vec!["/a".into()], 2, vec![vec![100.0], vec![0.0]]);
        let mut metrics = MetricsRegistry::new();
        metrics.insert(
            MetricKey::new("C", ResourceKind::Cpu),
            TimeSeries::from_values(vec![50.0, 1.0]),
        );
        let traces = WindowedTraces::with_windows(1.0, 2);
        let interner = Interner::new();
        let mut b = SimpleScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        let query = ApiTraffic::new(vec!["/a".into()], 2, vec![vec![100.0], vec![10.0]]);
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let cpu = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        assert!(cpu.get(1).is_finite());
        // Floor = 5% of mean(100, 0) = 2.5, so ratio = 10 / 2.5 = 4.
        assert!((cpu.get(1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn query_longer_than_history_wraps_the_day_profile() {
        let (traffic, metrics, traces, interner) = setup();
        let mut b = SimpleScaling::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        // Two query days over a one-day profile: day 2 repeats day 1.
        let query = ApiTraffic::new(
            vec!["/a".into()],
            4,
            [10.0, 20.0, 10.0, 5.0, 10.0, 20.0, 10.0, 5.0]
                .iter()
                .map(|&v| vec![v])
                .collect(),
        );
        let est = b.estimate(&QueryData {
            traffic: &query,
            traces: None,
            interner: None,
        });
        let cpu = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        assert_eq!(cpu.len(), 8);
        for t in 0..4 {
            assert_eq!(cpu.get(t).to_bits(), cpu.get(t + 4).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn estimate_before_fit_panics() {
        let (traffic, ..) = setup();
        let b = SimpleScaling::new();
        let _ = b.estimate(&QueryData {
            traffic: &traffic,
            traces: None,
            interner: None,
        });
    }
}
