//! The paper's three comparison baselines (§5.1):
//!
//! * [`ResourceAwareDl`] — "resrc-aware DL": a neural network per
//!   `(component, resource)` trained on *historical utilization only*,
//!   taking the previous day's utilization to predict the next day. It
//!   represents prior resource-forecasting work and is blind to API
//!   traffic.
//! * [`SimpleScaling`] — scales every resource of every component by the
//!   same factor: how many more or fewer API requests arrive relative to
//!   the past. API-volume-aware but flow-blind.
//! * [`ComponentAwareScaling`] — uses distributed traces to learn how often
//!   each *component* is invoked and scales all of a component's resources
//!   by its own invocation ratio. Flow-aware but resource-blind: it cannot
//!   tell that /readTimeline drives a store's CPU without driving its write
//!   IOps.
//!
//! All three implement [`BaselineEstimator`] over a shared
//! [`LearnData`]/[`QueryData`] interface so the experiment binaries can run
//! the four estimators (the baselines plus DeepRest) uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A fourth, non-estimating baseline rides along for the closed-loop
//! autoscaling comparison: [`ReactiveScaling`], an HPA-style threshold
//! controller that reacts to observed utilization with no traffic
//! foresight — the policy `deeprest-scale`'s proactive loop is measured
//! against.

mod component_aware;
mod interface;
mod reactive_scaling;
mod resource_aware;
mod simple_scaling;

pub use component_aware::ComponentAwareScaling;
pub use interface::{day_profile, BaselineEstimator, LearnData, QueryData};
pub use reactive_scaling::{ReactiveConfig, ReactiveScaling};
pub use resource_aware::ResourceAwareDl;
pub use simple_scaling::SimpleScaling;
