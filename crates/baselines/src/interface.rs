//! The shared estimator interface the experiment harness drives.

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, MetricsRegistry, TimeSeries};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::Interner;
use deeprest_workload::ApiTraffic;

/// Everything collected during the application-learning phase.
#[derive(Clone, Copy)]
pub struct LearnData<'a> {
    /// The API traffic the application served while learning.
    pub traffic: &'a ApiTraffic,
    /// The distributed traces captured in the same period.
    pub traces: &'a WindowedTraces,
    /// The resource metrics scraped in the same period.
    pub metrics: &'a MetricsRegistry,
    /// Name table for the traces.
    pub interner: &'a Interner,
}

/// A resource-estimation query.
#[derive(Clone, Copy)]
pub struct QueryData<'a> {
    /// The API traffic to estimate resources for.
    pub traffic: &'a ApiTraffic,
    /// Real traces, when the query period has already been served (sanity
    /// checks); hypothetical queries leave this empty.
    pub traces: Option<&'a WindowedTraces>,
    /// Name table for the query traces.
    pub interner: Option<&'a Interner>,
}

/// A baseline resource estimator.
pub trait BaselineEstimator {
    /// Display name used in reports (matches the paper's legend).
    fn name(&self) -> &'static str;

    /// Learns from the application-learning period.
    fn fit(&mut self, data: &LearnData<'_>);

    /// Estimates per-resource utilization for the query period.
    ///
    /// Returned series have one value per query window, keyed like the
    /// learning metrics.
    fn estimate(&self, query: &QueryData<'_>) -> BTreeMap<MetricKey, TimeSeries>;
}

/// Averages a windowed series into a one-day profile of `windows_per_day`
/// values: `profile[w]` is the mean over all observed days at time-of-day
/// `w`. The scaling baselines use this both for utilization and traffic.
///
/// # Panics
///
/// Panics if `windows_per_day` is zero.
pub fn day_profile(values: &[f64], windows_per_day: usize) -> Vec<f64> {
    assert!(
        windows_per_day > 0,
        "day_profile: windows_per_day must be > 0"
    );
    let mut sums = vec![0.0f64; windows_per_day];
    let mut counts = vec![0usize; windows_per_day];
    for (t, &v) in values.iter().enumerate() {
        sums[t % windows_per_day] += v;
        counts[t % windows_per_day] += 1;
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_profile_averages_across_days() {
        // Two days of 3 windows: [1,2,3] and [3,4,5] → profile [2,3,4].
        let v = [1.0, 2.0, 3.0, 3.0, 4.0, 5.0];
        assert_eq!(day_profile(&v, 3), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn day_profile_handles_partial_days() {
        let v = [1.0, 2.0, 3.0, 5.0];
        assert_eq!(day_profile(&v, 3), vec![3.0, 2.0, 3.0]);
    }
}
