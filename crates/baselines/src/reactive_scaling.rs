//! The reactive threshold autoscaler — the `deeprest-scale` comparison
//! baseline.
//!
//! Classic HPA-style control: observe the *current* per-replica
//! utilization, multiply the replica count by `observed / target`, apply a
//! deadband and a cooldown. No model, no traffic foresight — it reacts to
//! load it can already see, which is exactly why it pays for surges with
//! SLO-violation windows (the scale-up only starts once utilization has
//! already blown past the target, and new replicas arrive a start-up lag
//! later) and then bleeds the extra capacity off slowly.

use serde::{Deserialize, Serialize};

/// Tuning of the [`ReactiveScaling`] controller.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// Per-replica utilization the controller steers toward (fraction of
    /// capacity, e.g. `0.65`).
    pub target_utilization: f64,
    /// Relative deadband around the target inside which no decision is
    /// made (e.g. `0.1` holds while utilization is within ±10% of target).
    pub deadband: f64,
    /// Lower replica bound.
    pub min_replicas: u32,
    /// Upper replica bound.
    pub max_replicas: u32,
    /// Windows after a change during which further changes are suppressed.
    pub cooldown_windows: usize,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        Self {
            target_utilization: 0.65,
            deadband: 0.1,
            min_replicas: 1,
            max_replicas: 8,
            cooldown_windows: 2,
        }
    }
}

/// Reactive threshold autoscaler for one component.
///
/// Feed the observed per-replica utilization of each window to
/// [`observe`](Self::observe) and deploy the returned target. Entirely
/// deterministic: the decision sequence is a pure function of the observed
/// utilization sequence.
#[derive(Clone, Debug)]
pub struct ReactiveScaling {
    config: ReactiveConfig,
    target: u32,
    /// First window at which the next change is allowed.
    cooldown_until: usize,
}

impl ReactiveScaling {
    /// Creates a controller starting at `min_replicas`.
    pub fn new(config: ReactiveConfig) -> Self {
        let target = config.min_replicas.max(1);
        Self {
            config,
            target,
            cooldown_until: 0,
        }
    }

    /// The current replica target.
    pub fn target(&self) -> u32 {
        self.target
    }

    /// The controller's tuning.
    pub fn config(&self) -> &ReactiveConfig {
        &self.config
    }

    /// Observes one window's per-replica utilization (fraction of capacity;
    /// may exceed 1 under congestion) and returns the replica target for
    /// the next window: `ceil(current × observed / target_utilization)`,
    /// clamped to the configured bounds, held inside the deadband and
    /// during cooldown.
    pub fn observe(&mut self, window: usize, utilization: f64) -> u32 {
        let c = &self.config;
        if window < self.cooldown_until {
            return self.target;
        }
        let tgt = c.target_utilization.max(1e-9);
        if (utilization - tgt).abs() <= c.deadband * tgt {
            return self.target;
        }
        let raw = (f64::from(self.target) * utilization / tgt).ceil();
        let desired = (raw.max(1.0) as u32).clamp(c.min_replicas.max(1), c.max_replicas.max(1));
        if desired != self.target {
            self.target = desired;
            self.cooldown_until = window + c.cooldown_windows.max(1);
        }
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ReactiveConfig {
        ReactiveConfig {
            target_utilization: 0.5,
            deadband: 0.1,
            min_replicas: 1,
            max_replicas: 6,
            cooldown_windows: 2,
        }
    }

    #[test]
    fn scales_up_proportionally_to_overload() {
        let mut r = ReactiveScaling::new(config());
        // 1 replica at 150% of capacity → ceil(1 × 1.5 / 0.5) = 3.
        assert_eq!(r.observe(0, 1.5), 3);
    }

    #[test]
    fn holds_inside_the_deadband() {
        let mut r = ReactiveScaling::new(config());
        assert_eq!(r.observe(0, 0.54), 1); // Within ±10% of 0.5.
        assert_eq!(r.observe(1, 0.46), 1);
    }

    #[test]
    fn respects_bounds() {
        let mut r = ReactiveScaling::new(config());
        assert_eq!(r.observe(0, 100.0), 6, "clamped to max");
        let mut low = ReactiveScaling::new(ReactiveConfig {
            min_replicas: 2,
            ..config()
        });
        assert_eq!(low.target(), 2);
        assert_eq!(low.observe(0, 0.0), 2, "clamped to min");
    }

    #[test]
    fn cooldown_suppresses_consecutive_changes() {
        let mut r = ReactiveScaling::new(config());
        assert_eq!(r.observe(0, 1.0), 2);
        // Still overloaded, but the change at window 0 started a 2-window
        // cooldown.
        assert_eq!(r.observe(1, 1.0), 2);
        assert_eq!(r.observe(2, 1.0), 4);
    }

    #[test]
    fn scales_down_when_idle() {
        let mut r = ReactiveScaling::new(config());
        assert_eq!(r.observe(0, 2.0), 4);
        // Post-surge: 4 replicas at 10% each → ceil(4 × 0.1 / 0.5) = 1.
        assert_eq!(r.observe(2, 0.1), 1);
    }

    #[test]
    fn decisions_are_a_pure_function_of_observations() {
        let utils = [0.3, 0.9, 1.4, 0.8, 0.5, 0.2, 0.1, 0.6];
        let run = || {
            let mut r = ReactiveScaling::new(config());
            utils
                .iter()
                .enumerate()
                .map(|(w, &u)| r.observe(w, u))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
