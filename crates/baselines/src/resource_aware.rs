//! The resource-aware deep-learning baseline ("resrc-aware DL").

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, MinMaxScaler, TimeSeries};
use deeprest_nn::loss::mse_loss;
use deeprest_nn::{Adam, GruCell, Linear};
use deeprest_tensor::{Graph, ParamStore, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{BaselineEstimator, LearnData, QueryData};

/// A recurrent network per `(component, resource)` trained on *historical
/// utilization only*: the input at window `t` is the utilization one day
/// earlier (plus a time-of-day encoding) and the target is the utilization
/// at `t`. This mirrors prior forecasting work ([53, 64, 66, 69] in the
/// paper): "no matter how sophisticated they are in capturing the usage in
/// the past, they are unable to consider the API traffic the application
/// owner expects to serve."
///
/// At query time it rolls forward from the last learning day, feeding its
/// own predictions back autoregressively — so it keeps forecasting the
/// historical pattern regardless of what the query traffic looks like,
/// exactly the failure Figs. 10-11 and 18 dissect.
#[derive(Debug)]
pub struct ResourceAwareDl {
    /// GRU hidden units per model.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for initialization.
    pub seed: u64,
    state: Option<Fitted>,
}

#[derive(Debug)]
struct Fitted {
    windows_per_day: usize,
    store: ParamStore,
    models: BTreeMap<MetricKey, PerResource>,
}

#[derive(Debug)]
struct PerResource {
    gru: GruCell,
    head: Linear,
    scaler: MinMaxScaler,
    /// Normalized utilization of the last learning day (the seed input for
    /// query-time rollout).
    last_day: Vec<f32>,
}

impl Default for ResourceAwareDl {
    fn default() -> Self {
        Self {
            hidden_dim: 12,
            epochs: 40,
            lr: 0.01,
            seed: 11,
            state: None,
        }
    }
}

impl ResourceAwareDl {
    /// Creates an unfitted instance with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Input at time-of-day `w`: previous-day utilization + clock encoding.
    fn input(prev_day_util: f32, w: usize, windows_per_day: usize) -> Tensor {
        let phase = 2.0 * std::f32::consts::PI * w as f32 / windows_per_day as f32;
        Tensor::vector(vec![prev_day_util, phase.sin(), phase.cos()])
    }
}

impl BaselineEstimator for ResourceAwareDl {
    fn name(&self) -> &'static str {
        "resrc-aware-dl"
    }

    fn fit(&mut self, data: &LearnData<'_>) {
        let windows_per_day = data.traffic.windows_per_day();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut store = ParamStore::new();
        let mut models = BTreeMap::new();

        // Register all models first, then train them jointly (they do not
        // interact, but a single optimizer pass keeps the loop simple).
        for (key, series) in data.metrics.iter() {
            let scaler = MinMaxScaler::fit(series.values());
            let norm: Vec<f32> = series
                .values()
                .iter()
                .map(|&v| scaler.transform(v) as f32)
                .collect();
            let name = format!("{key}");
            let gru = GruCell::new(&mut store, &name, 3, self.hidden_dim, &mut rng);
            let head = Linear::new(
                &mut store,
                &format!("{name}.head"),
                self.hidden_dim,
                1,
                &mut rng,
            );
            let last_day = norm[norm.len().saturating_sub(windows_per_day)..].to_vec();
            models.insert(
                key.clone(),
                PerResource {
                    gru,
                    head,
                    scaler,
                    last_day,
                },
            );
        }

        // Training pairs: day d as input, day d+1 as target.
        let total = data.metrics.window_count().expect("metrics present");
        let days = total / windows_per_day;
        let mut opt = Adam::new(self.lr);
        let norm_series: BTreeMap<MetricKey, Vec<f32>> = data
            .metrics
            .iter()
            .map(|(key, series)| {
                let scaler = models[key].scaler;
                (
                    key.clone(),
                    series
                        .values()
                        .iter()
                        .map(|&v| scaler.transform(v) as f32)
                        .collect(),
                )
            })
            .collect();

        for _epoch in 0..self.epochs {
            for d in 0..days.saturating_sub(1) {
                store.zero_grads();
                let mut g = Graph::with_capacity(4096);
                let mut losses = Vec::new();
                for (key, model) in &models {
                    let norm = &norm_series[key];
                    let gru = model.gru.bind(&mut g, &store);
                    let head = model.head.bind(&mut g, &store);
                    let mut h = g.constant(Tensor::zeros(self.hidden_dim, 1));
                    for w in 0..windows_per_day {
                        let x = Self::input(norm[d * windows_per_day + w], w, windows_per_day);
                        let xv = g.constant(x);
                        h = gru.step(&mut g, xv, h);
                        let y = head.forward(&mut g, h);
                        let target = norm[(d + 1) * windows_per_day + w];
                        losses.push(mse_loss(&mut g, y, Tensor::scalar(target)));
                    }
                }
                let n = losses.len();
                let total_loss = g.add_n(&losses);
                let loss = g.scale(total_loss, 1.0 / n as f32);
                g.backward(loss, &mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
            }
        }

        self.state = Some(Fitted {
            windows_per_day,
            store,
            models,
        });
    }

    fn estimate(&self, query: &QueryData<'_>) -> BTreeMap<MetricKey, TimeSeries> {
        let fitted = self
            .state
            .as_ref()
            .expect("ResourceAwareDl: estimate called before fit");
        let windows = query.traffic.window_count();
        let wpd = fitted.windows_per_day;

        fitted
            .models
            .iter()
            .map(|(key, model)| {
                let mut out = Vec::with_capacity(windows);
                let mut prev_day = model.last_day.clone();
                let mut produced = 0;
                while produced < windows {
                    let mut g = Graph::with_capacity(2048);
                    let gru = model.gru.bind(&mut g, &fitted.store);
                    let head = model.head.bind(&mut g, &fitted.store);
                    let mut h = g.constant(Tensor::zeros(self.hidden_dim, 1));
                    let mut day_out = Vec::with_capacity(wpd);
                    for w in 0..wpd {
                        if produced + w >= windows + wpd {
                            break;
                        }
                        let xv = g.constant(Self::input(prev_day[w % prev_day.len()], w, wpd));
                        h = gru.step(&mut g, xv, h);
                        let y = head.forward(&mut g, h);
                        day_out.push(g.value(y).data()[0]);
                    }
                    for &v in day_out.iter().take(windows - produced) {
                        out.push(model.scaler.inverse(f64::from(v)).max(0.0));
                    }
                    produced = out.len();
                    prev_day = day_out;
                }
                (key.clone(), TimeSeries::from_values(out))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeprest_metrics::{MetricsRegistry, ResourceKind};
    use deeprest_trace::window::WindowedTraces;
    use deeprest_trace::Interner;
    use deeprest_workload::ApiTraffic;

    /// A perfectly periodic utilization: the baseline should forecast it.
    fn setup(days: usize, wpd: usize) -> (ApiTraffic, MetricsRegistry) {
        let pattern: Vec<f64> = (0..wpd)
            .map(|w| 10.0 + 8.0 * (2.0 * std::f64::consts::PI * w as f64 / wpd as f64).sin())
            .collect();
        let mut cpu = Vec::new();
        for _ in 0..days {
            cpu.extend(pattern.iter());
        }
        let traffic = ApiTraffic::new(vec!["/a".into()], wpd, vec![vec![1.0]; days * wpd]);
        let mut metrics = MetricsRegistry::new();
        metrics.insert(
            MetricKey::new("C", ResourceKind::Cpu),
            TimeSeries::from_values(cpu),
        );
        (traffic, metrics)
    }

    #[test]
    fn forecasts_recurring_pattern() {
        let (traffic, metrics) = setup(6, 16);
        let traces = WindowedTraces::with_windows(1.0, 96);
        let interner = Interner::new();
        let mut b = ResourceAwareDl::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        // Query: one more day of the same pattern.
        let q = traffic.slice(0..16);
        let est = b.estimate(&QueryData {
            traffic: &q,
            traces: None,
            interner: None,
        });
        let pred = &est[&MetricKey::new("C", ResourceKind::Cpu)];
        let actual = metrics
            .get_parts("C", ResourceKind::Cpu)
            .unwrap()
            .slice(0..16);
        let m = deeprest_metrics::eval::mape(&actual, pred);
        assert!(m < 20.0, "periodic forecast MAPE {m:.1}%");
    }

    #[test]
    fn ignores_query_traffic_by_design() {
        let (traffic, metrics) = setup(6, 16);
        let traces = WindowedTraces::with_windows(1.0, 96);
        let interner = Interner::new();
        let mut b = ResourceAwareDl::new();
        b.fit(&LearnData {
            traffic: &traffic,
            traces: &traces,
            metrics: &metrics,
            interner: &interner,
        });
        let q1 = traffic.slice(0..16);
        let q3 = q1.scale(3.0);
        let e1 = b.estimate(&QueryData {
            traffic: &q1,
            traces: None,
            interner: None,
        });
        let e3 = b.estimate(&QueryData {
            traffic: &q3,
            traces: None,
            interner: None,
        });
        // Same forecast regardless of traffic volume — its defining flaw.
        assert_eq!(
            e1[&MetricKey::new("C", ResourceKind::Cpu)].values(),
            e3[&MetricKey::new("C", ResourceKind::Cpu)].values()
        );
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn estimate_before_fit_panics() {
        let (traffic, _) = setup(2, 4);
        let b = ResourceAwareDl::new();
        let _ = b.estimate(&QueryData {
            traffic: &traffic,
            traces: None,
            interner: None,
        });
    }
}
