//! Concrete [`Sink`](crate::Sink) implementations: in-memory aggregation
//! for tests and a JSONL file writer for offline analysis.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use crate::{Event, Sink};

/// Aggregated view of one span name in a [`MemorySink`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of times the scope completed.
    pub count: u64,
    /// Total wall-clock microseconds across all completions.
    pub total_micros: u64,
}

#[derive(Default)]
struct MemoryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStats>,
    events: u64,
}

/// Aggregates events in memory. The workhorse of telemetry-backed
/// invariant tests: install one via [`crate::with_sink`], run the code
/// under test, then assert on [`MemorySink::counter`] and friends.
#[derive(Default)]
pub struct MemorySink {
    state: Mutex<MemoryState>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.lock().counters.clone()
    }

    /// Every value a gauge has taken, in record order.
    pub fn gauges(&self, name: &str) -> Vec<f64> {
        self.lock().gauges.get(name).cloned().unwrap_or_default()
    }

    /// The most recent value of a gauge.
    pub fn last_gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).and_then(|v| v.last().copied())
    }

    /// Completion count of a span name.
    pub fn span_count(&self, name: &str) -> u64 {
        self.lock().spans.get(name).map_or(0, |s| s.count)
    }

    /// Aggregated stats of a span name.
    pub fn span_stats(&self, name: &str) -> SpanStats {
        self.lock().spans.get(name).copied().unwrap_or_default()
    }

    /// Names of all spans observed so far.
    pub fn span_names(&self) -> Vec<String> {
        self.lock().spans.keys().cloned().collect()
    }

    /// Total events delivered.
    pub fn event_count(&self) -> u64 {
        self.lock().events
    }

    /// Discards all recorded state.
    pub fn clear(&self) {
        *self.lock() = MemoryState::default();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        let mut state = self.lock();
        state.events += 1;
        match event {
            Event::Counter { name, delta } => {
                *state.counters.entry(name.into_owned()).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                state
                    .gauges
                    .entry(name.into_owned())
                    .or_default()
                    .push(value);
            }
            Event::Span { name, micros } => {
                let stats = state.spans.entry(name.into_owned()).or_default();
                stats.count += 1;
                stats.total_micros += micros;
            }
        }
    }
}

/// Appends one JSON object per event to a file — the machine-readable
/// `telemetry.jsonl` the bench harness emits next to its result dumps.
///
/// Line shapes (a `seq` field gives a stable total order):
///
/// ```text
/// {"seq":0,"type":"span","name":"fit.train","micros":152340}
/// {"seq":1,"type":"counter","name":"pool.tasks","delta":8}
/// {"seq":2,"type":"gauge","name":"train.epoch_loss","value":0.0314}
/// ```
///
/// Each event is emitted as one `write_all` of a complete line, so every
/// recorded event is durable and parseable even when the process exits
/// without dropping the sink (the globally installed sink never drops) —
/// a buffered writer would lose its tail and could split a line across
/// flush boundaries.
pub struct JsonlSink {
    writer: Mutex<Numbered>,
    path: PathBuf,
}

struct Numbered {
    out: std::fs::File,
    seq: u64,
}

impl JsonlSink {
    /// Creates (truncates) the file at `path`, creating parent directories
    /// as needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the path is not writable.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(&path)?;
        Ok(Self {
            writer: Mutex::new(Numbered { out: file, seq: 0 }),
            path,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = w.seq;
        w.seq += 1;
        let line = match event {
            Event::Span { name, micros } => format!(
                "{{\"seq\":{seq},\"type\":\"span\",\"name\":\"{}\",\"micros\":{micros}}}\n",
                escape(&name)
            ),
            Event::Counter { name, delta } => format!(
                "{{\"seq\":{seq},\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}\n",
                escape(&name)
            ),
            Event::Gauge { name, value } => format!(
                "{{\"seq\":{seq},\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(&name),
                json_f64(value)
            ),
        };
        // Failures are swallowed: telemetry must never abort the pipeline.
        let _ = w.out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.out.flush();
    }
}

/// Escapes a name for embedding in a JSON string literal. Names are dotted
/// identifier paths in practice, but expert keys may carry arbitrary
/// component names, so quote/backslash/control characters are handled.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a valid JSON number (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a decimal point; that is
        // still a valid JSON number, so keep it.
        s
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn memory_sink_aggregates_by_kind() {
        let sink = MemorySink::new();
        sink.record(Event::Counter {
            name: Cow::Borrowed("c"),
            delta: 4,
        });
        sink.record(Event::Counter {
            name: Cow::Borrowed("c"),
            delta: 1,
        });
        sink.record(Event::Gauge {
            name: Cow::Borrowed("g"),
            value: 2.0,
        });
        sink.record(Event::Gauge {
            name: Cow::Borrowed("g"),
            value: 3.0,
        });
        sink.record(Event::Span {
            name: Cow::Borrowed("s"),
            micros: 10,
        });
        sink.record(Event::Span {
            name: Cow::Borrowed("s"),
            micros: 5,
        });
        assert_eq!(sink.counter("c"), 5);
        assert_eq!(sink.gauges("g"), vec![2.0, 3.0]);
        assert_eq!(sink.last_gauge("g"), Some(3.0));
        assert_eq!(
            sink.span_stats("s"),
            SpanStats {
                count: 2,
                total_micros: 15
            }
        );
        assert_eq!(sink.event_count(), 6);
        sink.clear();
        assert_eq!(sink.event_count(), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("deeprest-telemetry-test.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(Event::Span {
                name: Cow::Borrowed("fit.train"),
                micros: 123,
            });
            sink.record(Event::Counter {
                name: Cow::Borrowed("pool.tasks"),
                delta: 8,
            });
            sink.record(Event::Gauge {
                name: Cow::Borrowed("loss \"q\""),
                value: 0.5,
            });
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"micros\":123"));
        assert!(lines[1].contains("\"delta\":8"));
        assert!(lines[2].contains("\\\"q\\\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn nonfinite_gauges_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3");
    }
}
