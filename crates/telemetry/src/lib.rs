//! Zero-cost-when-disabled telemetry for the DeepRest training and
//! inference pipeline.
//!
//! DeepRest is itself an observability system — it learns from traces and
//! metrics — yet its own hot loops (tape construction, truncated-BPTT
//! fan-out, optimizer steps) would otherwise be a black box. This crate is
//! the event substrate the rest of the workspace instruments itself with:
//!
//! * **Events** — three shapes cover everything the pipeline emits:
//!   [`Event::Span`] (a named scope with wall-clock duration),
//!   [`Event::Counter`] (a monotonic increment) and [`Event::Gauge`]
//!   (a point-in-time measurement).
//! * **Sinks** — a pluggable [`Sink`] receives events: the implicit no-op
//!   sink (telemetry disabled, the default), [`MemorySink`] (aggregates
//!   in memory; powers invariant tests like "a GRU step records exactly 11
//!   tape nodes"), and [`JsonlSink`] (appends one JSON object per event to
//!   a file — the `telemetry.jsonl` the bench harness emits).
//! * **Selection** — the process-wide sink comes from the
//!   `DEEPREST_TELEMETRY` environment variable on first use, or from an
//!   explicit [`install`]/[`set_sink`] call (the `--telemetry` flag of the
//!   experiment binaries and `DeepRestConfig::telemetry` route here).
//!
//! # Overhead budget
//!
//! Instrumentation sits on real hot paths (the autodiff arena push, the
//! pool dispatch), so the disabled path must be nearly free: every probe
//! starts with [`enabled`], a single relaxed atomic load plus a branch.
//! No clock is read, no string is formatted and no lock is taken unless a
//! sink is installed. The Criterion benches (`joint_training_epoch`,
//! `expert_inference`) hold the disabled-mode regression under 2%.
//!
//! # Spec strings
//!
//! `DEEPREST_TELEMETRY`, `--telemetry` and `DeepRestConfig::telemetry` all
//! accept the same spec:
//!
//! | spec                        | sink                                  |
//! |-----------------------------|---------------------------------------|
//! | unset, ``, `0`, `off`, `none` | disabled (no-op)                    |
//! | `memory`                    | in-memory aggregation ([`MemorySink`]) |
//! | `1`, `on`, `jsonl`          | JSONL file at `telemetry.jsonl`       |
//! | `jsonl:<path>`              | JSONL file at `<path>`                |
//!
//! # Example
//!
//! ```
//! use deeprest_telemetry as telemetry;
//! use std::sync::Arc;
//!
//! let sink = Arc::new(telemetry::MemorySink::new());
//! telemetry::with_sink(sink.clone(), || {
//!     let _guard = telemetry::span("work");
//!     telemetry::counter("items", 3);
//!     telemetry::gauge("loss", 0.25);
//! });
//! assert_eq!(sink.counter("items"), 3);
//! assert_eq!(sink.span_count("work"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sinks;

pub use sinks::{JsonlSink, MemorySink};

use std::borrow::Cow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError, RwLock};
use std::time::Instant;

/// A telemetry event name: a dotted lowercase path such as
/// `pool.worker_busy` or `train.loss.Frontend:cpu`. Static names avoid
/// allocation; dynamic names (per-expert series) pass owned strings.
pub type Name = Cow<'static, str>;

/// One telemetry event, delivered to the installed [`Sink`].
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A named scope finished after `micros` microseconds of wall clock.
    Span {
        /// Scope name.
        name: Name,
        /// Elapsed wall-clock microseconds.
        micros: u64,
    },
    /// A monotonic counter advanced by `delta`.
    Counter {
        /// Counter name.
        name: Name,
        /// Increment (counters never decrease).
        delta: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name.
        name: Name,
        /// Observed value.
        value: f64,
    },
}

impl Event {
    /// The event's name, regardless of kind.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. } | Event::Counter { name, .. } | Event::Gauge { name, .. } => {
                name
            }
        }
    }
}

/// Receives telemetry events. Implementations must be cheap and
/// thread-safe: events arrive concurrently from pool worker threads.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: Event);
    /// Flushes any pending output to durable storage. Default: no-op.
    fn flush(&self) {}
}

/// Global telemetry state: 0 = uninitialized (env not yet consulted),
/// 1 = disabled, 2 = enabled (a sink is installed).
static STATE: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
/// Serializes [`with_sink`] scopes so concurrently running tests cannot
/// observe each other's events.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// Nesting depth of [`with_sink`] on this thread. Only the outermost
    /// scope takes [`SCOPE_LOCK`]; nested scopes ride on the already-held
    /// lock (a plain `Mutex` is not re-entrant).
    static SCOPE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

const UNINIT: u8 = 0;
const DISABLED: u8 = 1;
const ENABLED: u8 = 2;

/// Whether a sink is installed. This is the fast path every probe takes:
/// one relaxed atomic load and a branch when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        DISABLED => false,
        ENABLED => true,
        _ => init_from_env(),
    }
}

/// Consults `DEEPREST_TELEMETRY` once and installs the selected sink.
/// Called lazily by the first probe; calling it eagerly is harmless.
/// Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    ENV_INIT.call_once(|| {
        // An explicit set_sink/install may have raced ahead of the first
        // probe; never override it.
        if STATE.load(Ordering::Relaxed) != UNINIT {
            return;
        }
        let spec = std::env::var("DEEPREST_TELEMETRY").unwrap_or_default();
        if let Err(err) = install(&spec) {
            eprintln!("[deeprest-telemetry] ignoring DEEPREST_TELEMETRY={spec:?}: {err}");
            set_sink(None);
        }
    });
    STATE.load(Ordering::Relaxed) == ENABLED
}

/// Installs `sink` as the process-wide event receiver (`None` disables
/// telemetry). Replaces any previously installed sink.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    let state = if sink.is_some() { ENABLED } else { DISABLED };
    *lock_write() = sink;
    // Leaving UNINIT is what makes an explicit choice stick: the env-init
    // closure refuses to override a non-UNINIT state. Must not touch
    // ENV_INIT here — set_sink runs inside its closure via install(), and
    // a re-entrant Once::call_once deadlocks.
    STATE.store(state, Ordering::Relaxed);
}

/// The currently installed sink, if any.
pub fn current_sink() -> Option<Arc<dyn Sink>> {
    lock_read().clone()
}

/// Parses a spec string (see the [module docs](self)) and installs the
/// matching sink.
///
/// # Errors
///
/// Returns a description of the problem on an unknown spec or an
/// unwritable JSONL path; the previous sink is left untouched.
pub fn install(spec: &str) -> Result<(), String> {
    match spec.trim() {
        "" | "0" | "off" | "none" | "false" => {
            set_sink(None);
            Ok(())
        }
        "memory" => {
            set_sink(Some(Arc::new(MemorySink::new())));
            Ok(())
        }
        "1" | "on" | "true" | "jsonl" => {
            let sink = JsonlSink::create("telemetry.jsonl").map_err(|e| e.to_string())?;
            set_sink(Some(Arc::new(sink)));
            Ok(())
        }
        other => match other.strip_prefix("jsonl:") {
            Some(path) => {
                let sink = JsonlSink::create(path).map_err(|e| e.to_string())?;
                set_sink(Some(Arc::new(sink)));
                Ok(())
            }
            None => Err(format!(
                "unknown telemetry spec {other:?} (expected off|memory|jsonl|jsonl:<path>)"
            )),
        },
    }
}

/// Runs `f` with `sink` installed, restoring the previous sink afterwards.
/// Scopes are serialized process-wide, so concurrently running tests using
/// this helper cannot pollute each other's measurements.
pub fn with_sink<T>(sink: Arc<dyn Sink>, f: impl FnOnce() -> T) -> T {
    let outermost = SCOPE_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth == 0
    });
    let _guard = outermost.then(|| SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner));
    let previous = current_sink();
    set_sink(Some(sink));
    // Restore on unwind too, so one panicking test cannot leave its sink
    // installed for the rest of the process. Declared after `_guard` so it
    // runs (restore + depth decrement) before the lock releases.
    struct Restore(Option<Arc<dyn Sink>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_sink(self.0.take());
            SCOPE_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Advances a monotonic counter.
#[inline]
pub fn counter(name: impl Into<Name>, delta: u64) {
    if enabled() {
        record(Event::Counter {
            name: name.into(),
            delta,
        });
    }
}

/// Records a point-in-time measurement.
#[inline]
pub fn gauge(name: impl Into<Name>, value: f64) {
    if enabled() {
        record(Event::Gauge {
            name: name.into(),
            value,
        });
    }
}

/// Opens a timed scope: the returned guard records an [`Event::Span`] with
/// the elapsed wall clock when dropped. When telemetry is disabled the
/// guard is inert and no clock is read.
#[inline]
pub fn span(name: impl Into<Name>) -> SpanGuard {
    SpanGuard {
        start: enabled().then(|| (name.into(), Instant::now())),
    }
}

/// Runs `f`, returning its result and the elapsed seconds, and records a
/// span event under `name` when telemetry is enabled. Unlike [`span`], the
/// clock is always read — use this where the caller needs the duration
/// itself (e.g. `TrainReport` phase timings).
pub fn timed<T>(name: impl Into<Name>, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    if enabled() {
        record(Event::Span {
            name: name.into(),
            micros: elapsed.as_micros() as u64,
        });
    }
    (out, elapsed.as_secs_f64())
}

/// Flushes the installed sink.
pub fn flush() {
    if let Some(sink) = current_sink() {
        sink.flush();
    }
}

/// Guard returned by [`span`]; records the scope duration on drop.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    start: Option<(Name, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.start.take() {
            record(Event::Span {
                name,
                micros: start.elapsed().as_micros() as u64,
            });
        }
    }
}

fn record(event: Event) {
    if let Some(sink) = lock_read().as_ref() {
        sink.record(event);
    }
}

fn lock_read() -> std::sync::RwLockReadGuard<'static, Option<Arc<dyn Sink>>> {
    SINK.read().unwrap_or_else(PoisonError::into_inner)
}

fn lock_write() -> std::sync::RwLockWriteGuard<'static, Option<Arc<dyn Sink>>> {
    SINK.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sink_reports_zeroes() {
        let sink = MemorySink::new();
        assert_eq!(sink.counter("never"), 0);
        assert_eq!(sink.span_count("never"), 0);
        assert!(sink.gauges("never").is_empty());
        assert_eq!(sink.event_count(), 0);
    }

    #[test]
    fn counter_gauge_span_reach_the_sink() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            counter("c", 2);
            counter("c", 3);
            gauge("g", 1.5);
            let _s = span("s");
        });
        assert_eq!(sink.counter("c"), 5);
        assert_eq!(sink.gauges("g"), vec![1.5]);
        assert_eq!(sink.span_count("s"), 1);
    }

    #[test]
    fn with_sink_restores_previous_sink() {
        let outer = Arc::new(MemorySink::new());
        with_sink(outer.clone(), || {
            let inner = Arc::new(MemorySink::new());
            with_sink(inner.clone(), || counter("x", 1));
            assert_eq!(inner.counter("x"), 1);
            counter("y", 1);
        });
        assert_eq!(outer.counter("x"), 0);
        assert_eq!(outer.counter("y"), 1);
    }

    #[test]
    fn install_rejects_unknown_specs() {
        assert!(install("quantum").is_err());
    }

    #[test]
    fn install_spec_variants() {
        let _guard = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let previous = current_sink();
        install("memory").unwrap();
        assert!(enabled());
        install("off").unwrap();
        assert!(!enabled());
        set_sink(previous);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (out, secs) = timed("t", || 41 + 1);
        assert_eq!(out, 42);
        assert!(secs >= 0.0);
    }
}
