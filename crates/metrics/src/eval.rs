//! Evaluation metrics used throughout the paper's §5.

use crate::TimeSeries;

/// Mean absolute percentage error (in percent) between `actual` and
/// `estimated`, the paper's headline estimation-quality metric (Fig. 12).
///
/// Windows where the actual value is (near) zero are evaluated against a
/// small floor instead of dividing by zero, matching the usual MAPE
/// convention for utilization data where idle windows would otherwise
/// dominate the score.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn mape(actual: &TimeSeries, estimated: &TimeSeries) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "mape: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    // Floor at 1% of the series' dynamic range so near-idle windows do not
    // blow the percentage up.
    let floor = (actual.max().abs().max(1e-9)) * 0.01;
    let mut total = 0.0;
    for (a, e) in actual.values().iter().zip(estimated.values().iter()) {
        let denom = a.abs().max(floor);
        total += (a - e).abs() / denom;
    }
    100.0 * total / actual.len() as f64
}

/// Symmetric MAPE (bounded to `[0, 200]`), robust to near-zero actuals.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn smape(actual: &TimeSeries, estimated: &TimeSeries) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "smape: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (a, e) in actual.values().iter().zip(estimated.values().iter()) {
        let denom = (a.abs() + e.abs()).max(1e-12);
        total += 2.0 * (a - e).abs() / denom;
    }
    100.0 * total / actual.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn rmse(actual: &TimeSeries, estimated: &TimeSeries) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "rmse: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let sum: f64 = actual
        .values()
        .iter()
        .zip(estimated.values().iter())
        .map(|(a, e)| (a - e) * (a - e))
        .sum();
    (sum / actual.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn mae(actual: &TimeSeries, estimated: &TimeSeries) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "mae: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let sum: f64 = actual
        .values()
        .iter()
        .zip(estimated.values().iter())
        .map(|(a, e)| (a - e).abs())
        .sum();
    sum / actual.len() as f64
}

/// Fraction of windows whose actual value lies inside `[lower, upper]`.
///
/// A well-calibrated δ-confidence interval should cover ≈ δ of benign
/// windows (§5.4 uses δ = 0.90).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn interval_coverage(actual: &TimeSeries, lower: &TimeSeries, upper: &TimeSeries) -> f64 {
    assert_eq!(
        actual.len(),
        lower.len(),
        "interval_coverage: length mismatch"
    );
    assert_eq!(
        actual.len(),
        upper.len(),
        "interval_coverage: length mismatch"
    );
    if actual.is_empty() {
        return 1.0;
    }
    let inside = actual
        .values()
        .iter()
        .zip(lower.values().iter().zip(upper.values().iter()))
        .filter(|(a, (l, u))| **a >= **l && **a <= **u)
        .count();
    inside as f64 / actual.len() as f64
}

/// Mean width of the `[lower, upper]` interval, in the series' own units.
///
/// Coverage alone is gameable — an infinitely wide interval covers
/// everything — so calibration is always reported as the (coverage, width)
/// pair: a well-adapted model holds coverage near nominal *without*
/// inflating the width.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn mean_interval_width(lower: &TimeSeries, upper: &TimeSeries) -> f64 {
    assert_eq!(
        lower.len(),
        upper.len(),
        "mean_interval_width: length mismatch"
    );
    if lower.is_empty() {
        return 0.0;
    }
    let sum: f64 = lower
        .values()
        .iter()
        .zip(upper.values().iter())
        .map(|(l, u)| u - l)
        .sum();
    sum / lower.len() as f64
}

/// Interval-calibration summary: empirical coverage (PICP) against the
/// nominal confidence level, plus the mean interval width that coverage
/// was bought with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationReport {
    /// Nominal confidence level δ the intervals were trained for.
    pub nominal: f64,
    /// Prediction-interval coverage probability: the fraction of windows
    /// whose actual value fell inside `[lower, upper]`.
    pub coverage: f64,
    /// Mean `upper - lower` over the evaluated windows.
    pub mean_width: f64,
}

impl CalibrationReport {
    /// Signed calibration gap in coverage points: positive when the
    /// interval over-covers, negative when it under-covers.
    pub fn gap_points(&self) -> f64 {
        100.0 * (self.coverage - self.nominal)
    }

    /// `true` when empirical coverage is within `tolerance_points`
    /// percentage points of nominal (the drift-scenario acceptance bar
    /// uses 5 points).
    pub fn within(&self, tolerance_points: f64) -> bool {
        self.gap_points().abs() <= tolerance_points
    }
}

impl core::fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "coverage {:.1}% (nominal {:.1}%, gap {:+.1}pt), mean width {:.3}",
            100.0 * self.coverage,
            100.0 * self.nominal,
            self.gap_points(),
            self.mean_width
        )
    }
}

/// Computes the [`CalibrationReport`] of a δ-interval series: empirical
/// coverage via [`interval_coverage`] and the width it cost via
/// [`mean_interval_width`].
///
/// # Panics
///
/// Panics if the series lengths differ or `nominal` is outside `(0, 1)`.
pub fn interval_calibration(
    actual: &TimeSeries,
    lower: &TimeSeries,
    upper: &TimeSeries,
    nominal: f64,
) -> CalibrationReport {
    assert!(
        nominal > 0.0 && nominal < 1.0,
        "interval_calibration: nominal must be in (0, 1), got {nominal}"
    );
    CalibrationReport {
        nominal,
        coverage: interval_coverage(actual, lower, upper),
        mean_width: mean_interval_width(lower, upper),
    }
}

/// Per-window deviation of the actual measurement from the expected interval
/// (the paper quantifies this "by L2 distance" and renders it as a 1-D
/// heatmap, Fig. 19b). Inside the interval the score is zero; outside it is
/// the squared distance to the nearest interval edge, normalized by the
/// interval's own scale so scores are comparable across resources.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn interval_deviation(
    actual: &TimeSeries,
    lower: &TimeSeries,
    upper: &TimeSeries,
) -> TimeSeries {
    assert_eq!(
        actual.len(),
        lower.len(),
        "interval_deviation: length mismatch"
    );
    assert_eq!(
        actual.len(),
        upper.len(),
        "interval_deviation: length mismatch"
    );
    let scale = (upper.max() - lower.min()).abs().max(1e-9);
    actual
        .values()
        .iter()
        .zip(lower.values().iter().zip(upper.values().iter()))
        .map(|(a, (l, u))| {
            let d = if a < l {
                (l - a) / scale
            } else if a > u {
                (a - u) / scale
            } else {
                0.0
            };
            d * d
        })
        .collect()
}

/// A contiguous run of windows whose anomaly score exceeds a threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnomalousRange {
    /// First window of the run (inclusive).
    pub start: usize,
    /// One past the last window of the run.
    pub end: usize,
}

impl AnomalousRange {
    /// Number of windows in the run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a degenerate empty range.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Extracts contiguous runs where `scores` exceeds `threshold`; runs shorter
/// than `min_len` windows are dropped (debouncing isolated noisy windows).
pub fn anomalous_ranges(
    scores: &TimeSeries,
    threshold: f64,
    min_len: usize,
) -> Vec<AnomalousRange> {
    let mut out = Vec::new();
    let mut start = None::<usize>;
    for (t, &s) in scores.values().iter().enumerate() {
        if s > threshold {
            start.get_or_insert(t);
        } else if let Some(st) = start.take() {
            if t - st >= min_len {
                out.push(AnomalousRange { start: st, end: t });
            }
        }
    }
    if let Some(st) = start {
        if scores.len() - st >= min_len {
            out.push(AnomalousRange {
                start: st,
                end: scores.len(),
            });
        }
    }
    out
}

/// Percentage accuracy used for Table 1's trace-synthesis quality: compares
/// two per-window count vectors (synthesized vs ground truth features) as
/// `100·(1 - Σ|a-b| / max(Σ|a|, Σ|b|))`, averaged over windows, clamped to
/// `[0, 100]`.
pub fn count_vector_accuracy(actual: &[Vec<f64>], synthesized: &[Vec<f64>]) -> f64 {
    assert_eq!(
        actual.len(),
        synthesized.len(),
        "count_vector_accuracy: window count mismatch"
    );
    if actual.is_empty() {
        return 100.0;
    }
    let mut total = 0.0;
    for (a, s) in actual.iter().zip(synthesized.iter()) {
        assert_eq!(a.len(), s.len(), "count_vector_accuracy: dim mismatch");
        let l1_diff: f64 = a.iter().zip(s.iter()).map(|(x, y)| (x - y).abs()).sum();
        let mass = a
            .iter()
            .map(|v| v.abs())
            .sum::<f64>()
            .max(s.iter().map(|v| v.abs()).sum::<f64>());
        let acc = if mass < 1e-12 {
            1.0
        } else {
            (1.0 - l1_diff / mass).max(0.0)
        };
        total += acc;
    }
    100.0 * total / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::from_values(v.to_vec())
    }

    #[test]
    fn mape_of_perfect_estimate_is_zero() {
        let a = ts(&[10.0, 20.0, 30.0]);
        assert_eq!(mape(&a, &a), 0.0);
    }

    #[test]
    fn mape_scales_with_error() {
        let a = ts(&[100.0, 100.0]);
        let e = ts(&[110.0, 90.0]);
        assert!((mape(&a, &e) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_survives_zero_actuals() {
        let a = ts(&[0.0, 100.0]);
        let e = ts(&[1.0, 100.0]);
        let m = mape(&a, &e);
        assert!(m.is_finite());
        assert!(m > 0.0);
    }

    #[test]
    fn smape_is_bounded() {
        let a = ts(&[0.0, 0.0]);
        let e = ts(&[5.0, 100.0]);
        let s = smape(&a, &e);
        assert!(s <= 200.0 + 1e-9);
    }

    #[test]
    fn rmse_and_mae_known_values() {
        let a = ts(&[0.0, 0.0]);
        let e = ts(&[3.0, 4.0]);
        assert!((rmse(&a, &e) - (12.5f64).sqrt()).abs() < 1e-9);
        assert!((mae(&a, &e) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn coverage_counts_inside_windows() {
        let a = ts(&[1.0, 5.0, 9.0, 20.0]);
        let lo = ts(&[0.0; 4]);
        let hi = ts(&[10.0; 4]);
        assert_eq!(interval_coverage(&a, &lo, &hi), 0.75);
    }

    #[test]
    fn mean_width_known_value() {
        let lo = ts(&[0.0, 1.0, 2.0]);
        let hi = ts(&[1.0, 4.0, 5.0]);
        assert!((mean_interval_width(&lo, &hi) - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_interval_width(&ts(&[]), &ts(&[])), 0.0);
    }

    #[test]
    fn calibration_report_combines_coverage_and_width() {
        let a = ts(&[1.0, 5.0, 9.0, 20.0]);
        let lo = ts(&[0.0; 4]);
        let hi = ts(&[10.0; 4]);
        let r = interval_calibration(&a, &lo, &hi, 0.90);
        assert_eq!(r.coverage, 0.75);
        assert_eq!(r.mean_width, 10.0);
        assert!((r.gap_points() + 15.0).abs() < 1e-9);
        assert!(!r.within(5.0));
        assert!(r.within(15.1));
    }

    #[test]
    fn calibration_report_at_nominal_is_within_zero() {
        // 9 of 10 windows inside a δ=0.90 interval: gap is exactly 0.
        let a = ts(&[0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 2.0]);
        let lo = ts(&[0.0; 10]);
        let hi = ts(&[1.0; 10]);
        let r = interval_calibration(&a, &lo, &hi, 0.90);
        assert!(r.within(1e-9), "gap {}", r.gap_points());
    }

    #[test]
    #[should_panic(expected = "nominal must be in (0, 1)")]
    fn calibration_rejects_bad_nominal() {
        let a = ts(&[1.0]);
        let _ = interval_calibration(&a, &a, &a, 1.0);
    }

    #[test]
    fn deviation_is_zero_inside_interval() {
        let a = ts(&[5.0, 15.0, -5.0]);
        let lo = ts(&[0.0; 3]);
        let hi = ts(&[10.0; 3]);
        let d = interval_deviation(&a, &lo, &hi);
        assert_eq!(d.get(0), 0.0);
        assert!(d.get(1) > 0.0);
        assert!(d.get(2) > 0.0);
        // Symmetric overshoot magnitude gives symmetric score.
        assert!((d.get(1) - d.get(2)).abs() < 1e-12);
    }

    #[test]
    fn anomalous_ranges_debounce() {
        let s = ts(&[0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]);
        let runs = anomalous_ranges(&s, 0.5, 2);
        assert_eq!(runs, vec![AnomalousRange { start: 3, end: 6 }]);
        // Trailing open run is kept when long enough.
        let runs = anomalous_ranges(&s, 0.5, 1);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[2], AnomalousRange { start: 7, end: 8 });
    }

    #[test]
    fn count_vector_accuracy_perfect_and_half() {
        let a = vec![vec![2.0, 2.0]];
        assert_eq!(count_vector_accuracy(&a, &a), 100.0);
        let s = vec![vec![2.0, 0.0]];
        assert!((count_vector_accuracy(&a, &s) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn count_vector_accuracy_empty_windows_are_perfect() {
        let a = vec![vec![0.0, 0.0]];
        assert_eq!(count_vector_accuracy(&a, &a), 100.0);
    }
}
