//! Windowed utilization time-series.

use serde::{Deserialize, Serialize};

/// A fixed-window utilization time-series: `values[t]` is the average
/// utilization over window `t`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Creates a zero-filled series of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            values: vec![0.0; len],
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the series has no windows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable access to the values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at window `t`.
    pub fn get(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// Appends a value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Sub-series over a window range, renumbered from zero.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        TimeSeries {
            values: self.values[range].to_vec(),
        }
    }

    /// Mean over all windows (zero for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Largest value (negative infinity for an empty series).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest value (positive infinity for an empty series).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Elementwise sum with another series.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.len(), other.len(), "TimeSeries::add: length mismatch");
        TimeSeries {
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scales every value by `factor`.
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Applies exponential smoothing with coefficient `alpha ∈ (0, 1]`:
    /// `s_t = alpha·v_t + (1-alpha)·s_{t-1}`. Models the queueing carryover
    /// the simulator's resource dynamics exhibit.
    pub fn ewma(&self, alpha: f64) -> TimeSeries {
        let mut out = Vec::with_capacity(self.values.len());
        let mut prev = None::<f64>;
        for &v in &self.values {
            let s = match prev {
                None => v,
                Some(p) => alpha * v + (1.0 - alpha) * p,
            };
            out.push(s);
            prev = Some(s);
        }
        TimeSeries { values: out }
    }

    /// Centered moving average with an odd window of `width` (clamped at the
    /// edges). Used to stabilize anomaly scores before event extraction.
    pub fn moving_average(&self, width: usize) -> TimeSeries {
        let half = width.max(1) / 2;
        let n = self.values.len();
        (0..n)
            .map(|t| {
                let lo = t.saturating_sub(half);
                let hi = (t + half + 1).min(n);
                self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// ASCII sparkline for terminal reports (one char per window, resampled
    /// to at most `width` chars).
    pub fn sparkline(&self, width: usize) -> String {
        const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.values.is_empty() || width == 0 {
            return String::new();
        }
        let lo = self.min();
        let hi = self.max();
        let span = (hi - lo).max(1e-12);
        let n = self.values.len().min(width);
        let mut out = String::with_capacity(n * 3);
        for i in 0..n {
            // Average the bucket of windows this char covers.
            let start = i * self.values.len() / n;
            let end = ((i + 1) * self.values.len() / n).max(start + 1);
            let avg = self.values[start..end].iter().sum::<f64>() / (end - start) as f64;
            let tick = (((avg - lo) / span) * 7.0).round() as usize;
            out.push(TICKS[tick.min(7)]);
        }
        out
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = TimeSeries::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.min(), 1.0);
        assert!((s.std_dev() - 1.118_033_988).abs() < 1e-6);
    }

    #[test]
    fn slice_and_push() {
        let mut s = TimeSeries::zeros(3);
        s.push(5.0);
        assert_eq!(s.len(), 4);
        let tail = s.slice(2..4);
        assert_eq!(tail.values(), &[0.0, 5.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = TimeSeries::from_values(vec![1.0, 2.0]);
        let b = TimeSeries::from_values(vec![10.0, 20.0]);
        assert_eq!(a.add(&b).values(), &[11.0, 22.0]);
        assert_eq!(a.scale(3.0).values(), &[3.0, 6.0]);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let s = TimeSeries::from_values(vec![0.0, 10.0, 0.0, 0.0]);
        let sm = s.ewma(0.5);
        assert_eq!(sm.values()[0], 0.0);
        assert_eq!(sm.values()[1], 5.0);
        assert_eq!(sm.values()[2], 2.5);
        assert!(sm.values()[3] < sm.values()[2]);
    }

    #[test]
    fn moving_average_smooths_and_preserves_length() {
        let s = TimeSeries::from_values(vec![0.0, 9.0, 0.0, 0.0, 9.0, 0.0]);
        let m = s.moving_average(3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.values()[1], 3.0);
        assert_eq!(m.values()[0], 4.5); // Edge window is clamped to 2 values.
        assert!((m.mean() - s.mean()).abs() < 1.0);
    }

    #[test]
    fn sparkline_has_requested_width() {
        let s: TimeSeries = (0..100).map(|i| i as f64).collect();
        let line = s.sparkline(20);
        assert_eq!(line.chars().count(), 20);
        // Monotone data → monotone sparkline endpoints.
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_of_flat_series_does_not_panic() {
        let s = TimeSeries::from_values(vec![5.0; 10]);
        let line = s.sparkline(5);
        assert_eq!(line.chars().count(), 5);
    }
}
