//! Min-max normalization for training targets and features.

use serde::{Deserialize, Serialize};

/// A min-max scaler mapping a raw range onto `[0, 1]`.
///
/// DeepRest trains one hyperparameter setting across resources with wildly
/// different units (CPU %, MiB, IOps); normalizing each target series makes
/// that possible. The scaler is fitted on application-learning data and
/// stored in the model so query-time predictions can be mapped back.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
}

impl MinMaxScaler {
    /// Fits a scaler on `values`. A constant (or empty) series degenerates
    /// to the identity around its value, avoiding division by zero.
    pub fn fit(values: &[f64]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return Self { min: 0.0, max: 1.0 };
        }
        if (max - min).abs() < 1e-12 {
            // Degenerate range: scale as identity offset by min.
            return Self {
                min,
                max: min + 1.0,
            };
        }
        Self { min, max }
    }

    /// Fitted minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Fitted maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps a raw value into normalized space.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.min) / (self.max - self.min)
    }

    /// Maps a normalized value back to raw space.
    pub fn inverse(&self, v: f64) -> f64 {
        v * (self.max - self.min) + self.min
    }

    /// Transforms a whole slice.
    pub fn transform_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.transform(v)).collect()
    }

    /// Inverse-transforms a whole slice.
    pub fn inverse_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.inverse(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let s = MinMaxScaler::fit(&[10.0, 20.0, 30.0]);
        assert_eq!(s.transform(10.0), 0.0);
        assert_eq!(s.transform(30.0), 1.0);
        assert_eq!(s.transform(20.0), 0.5);
        for v in [10.0, 17.3, 30.0, 45.0] {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = MinMaxScaler::fit(&[5.0, 5.0, 5.0]);
        let t = s.transform(5.0);
        assert!(t.is_finite());
        assert!((s.inverse(t) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_defaults_to_unit_range() {
        let s = MinMaxScaler::fit(&[]);
        assert_eq!(s.transform(0.5), 0.5);
    }

    #[test]
    fn extrapolates_beyond_fitted_range() {
        // Queries with 3x more users than ever push raw values beyond the
        // fitted max; the scaler must extrapolate linearly, not clamp.
        let s = MinMaxScaler::fit(&[0.0, 10.0]);
        assert_eq!(s.transform(30.0), 3.0);
        assert_eq!(s.inverse(3.0), 30.0);
    }

    #[test]
    fn transform_all_matches_pointwise() {
        let s = MinMaxScaler::fit(&[0.0, 4.0]);
        assert_eq!(s.transform_all(&[0.0, 2.0, 4.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(s.inverse_all(&[0.0, 0.5, 1.0]), vec![0.0, 2.0, 4.0]);
    }
}
