//! The telemetry registry: one time-series per `(component, resource)`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{ResourceKind, TimeSeries};

/// Key of one metric stream.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricKey {
    /// Component name (or its hashed opaque form when privacy mode is on).
    pub component: String,
    /// Resource type.
    pub resource: ResourceKind,
}

impl MetricKey {
    /// Creates a key.
    pub fn new(component: impl Into<String>, resource: ResourceKind) -> Self {
        Self {
            component: component.into(),
            resource,
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.component, self.resource)
    }
}

/// A deterministic-iteration collection of utilization time-series, the
/// DeepRest-side stand-in for a Prometheus server's scrape database.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    series: BTreeMap<MetricKey, TimeSeries>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a series.
    pub fn insert(&mut self, key: MetricKey, series: TimeSeries) {
        self.series.insert(key, series);
    }

    /// Looks up a series.
    pub fn get(&self, key: &MetricKey) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// Looks up a series by parts.
    pub fn get_parts(&self, component: &str, resource: ResourceKind) -> Option<&TimeSeries> {
        self.series.get(&MetricKey::new(component, resource))
    }

    /// Mutable lookup, inserting an empty series when missing.
    pub fn entry(&mut self, key: MetricKey) -> &mut TimeSeries {
        self.series.entry(key).or_default()
    }

    /// Number of metric streams.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Returns `true` when no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Iterates over `(key, series)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &TimeSeries)> {
        self.series.iter()
    }

    /// All keys in deterministic order.
    pub fn keys(&self) -> impl Iterator<Item = &MetricKey> {
        self.series.keys()
    }

    /// Restricts every series to a window range, renumbering from zero.
    pub fn slice(&self, range: std::ops::Range<usize>) -> MetricsRegistry {
        MetricsRegistry {
            series: self
                .series
                .iter()
                .map(|(k, s)| (k.clone(), s.slice(range.clone())))
                .collect(),
        }
    }

    /// Length of the series (they are kept aligned); `None` when empty.
    pub fn window_count(&self) -> Option<usize> {
        self.series.values().next().map(TimeSeries::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut r = MetricsRegistry::new();
        let key = MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops);
        r.insert(key.clone(), TimeSeries::from_values(vec![1.0, 2.0]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&key).unwrap().values(), &[1.0, 2.0]);
        assert!(r
            .get_parts("PostStorageMongoDB", ResourceKind::WriteIops)
            .is_some());
        assert!(r
            .get_parts("PostStorageMongoDB", ResourceKind::Cpu)
            .is_none());
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.insert(MetricKey::new("b", ResourceKind::Cpu), TimeSeries::zeros(1));
        r.insert(MetricKey::new("a", ResourceKind::Cpu), TimeSeries::zeros(1));
        r.insert(
            MetricKey::new("a", ResourceKind::Memory),
            TimeSeries::zeros(1),
        );
        let keys: Vec<String> = r.keys().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["a/cpu", "a/memory", "b/cpu"]);
    }

    #[test]
    fn slice_applies_to_all_series() {
        let mut r = MetricsRegistry::new();
        r.insert(
            MetricKey::new("a", ResourceKind::Cpu),
            TimeSeries::from_values(vec![1.0, 2.0, 3.0, 4.0]),
        );
        let sliced = r.slice(1..3);
        assert_eq!(
            sliced.get_parts("a", ResourceKind::Cpu).unwrap().values(),
            &[2.0, 3.0]
        );
        assert_eq!(sliced.window_count(), Some(2));
    }

    #[test]
    fn entry_creates_empty_series() {
        let mut r = MetricsRegistry::new();
        r.entry(MetricKey::new("x", ResourceKind::Memory)).push(9.0);
        assert_eq!(
            r.get_parts("x", ResourceKind::Memory).unwrap().values(),
            &[9.0]
        );
    }
}
