//! The resource types DeepRest estimates.

use serde::{Deserialize, Serialize};

/// A resource type tracked per component.
///
/// The paper's prototype "considers CPU and memory utilization in all
/// components, and also write IOps, write throughput, and disk usage in
/// stateful components" (§5.1), giving 76 resources over 29 components for
/// the social network and 54 over 18 for the hotel reservation app.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU utilization, percent of the component's allocation.
    Cpu,
    /// Memory usage, MiB.
    Memory,
    /// Write operations per second (stateful components only).
    WriteIops,
    /// Write throughput, KiB per second (stateful components only).
    WriteThroughput,
    /// Cumulative disk usage, MiB (stateful components only).
    DiskUsage,
}

impl ResourceKind {
    /// All resource kinds, in display order (matches the rows of Fig. 12).
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::WriteIops,
        ResourceKind::WriteThroughput,
        ResourceKind::DiskUsage,
    ];

    /// The kinds tracked for every component.
    pub const STATELESS: [ResourceKind; 2] = [ResourceKind::Cpu, ResourceKind::Memory];

    /// Returns `true` when this resource only exists on stateful components
    /// (marked black in Fig. 12 for stateless ones).
    pub fn stateful_only(self) -> bool {
        matches!(
            self,
            ResourceKind::WriteIops | ResourceKind::WriteThroughput | ResourceKind::DiskUsage
        )
    }

    /// Returns `true` when the series is cumulative (monotone
    /// non-decreasing), like disk usage.
    pub fn cumulative(self) -> bool {
        matches!(self, ResourceKind::DiskUsage)
    }

    /// Short lowercase label used in reports and file names.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::WriteIops => "write_iops",
            ResourceKind::WriteThroughput => "write_throughput",
            ResourceKind::DiskUsage => "disk_usage",
        }
    }

    /// Unit string for display.
    pub fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "%",
            ResourceKind::Memory => "MiB",
            ResourceKind::WriteIops => "ops/s",
            ResourceKind::WriteThroughput => "KiB/s",
            ResourceKind::DiskUsage => "MiB",
        }
    }

    /// The kinds tracked for a component with the given statefulness.
    pub fn for_component(stateful: bool) -> &'static [ResourceKind] {
        if stateful {
            &Self::ALL
        } else {
            &Self::STATELESS
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateful_only_classification() {
        assert!(!ResourceKind::Cpu.stateful_only());
        assert!(!ResourceKind::Memory.stateful_only());
        assert!(ResourceKind::WriteIops.stateful_only());
        assert!(ResourceKind::WriteThroughput.stateful_only());
        assert!(ResourceKind::DiskUsage.stateful_only());
    }

    #[test]
    fn for_component_matches_paper_counts() {
        // Social network: 23 stateless + 6 stateful = 23*2 + 6*5 = 76.
        let total = 23 * ResourceKind::for_component(false).len()
            + 6 * ResourceKind::for_component(true).len();
        assert_eq!(total, 76);
        // Hotel reservation: 12 stateless + 6 stateful = 54.
        let total = 12 * ResourceKind::for_component(false).len()
            + 6 * ResourceKind::for_component(true).len();
        assert_eq!(total, 54);
    }

    #[test]
    fn only_disk_usage_is_cumulative() {
        for kind in ResourceKind::ALL {
            assert_eq!(kind.cumulative(), kind == ResourceKind::DiskUsage);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            ResourceKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ResourceKind::ALL.len());
    }
}
