//! Resource telemetry and evaluation metrics for DeepRest.
//!
//! Stands in for the paper's Prometheus/cAdvisor telemetry stack: windowed
//! utilization time-series per `(component, resource)` pair, plus the
//! evaluation machinery the paper's §5 uses — mean absolute percentage error
//! for estimation quality (Fig. 12, 14-17), interval coverage and the
//! L2-outside-interval anomaly scores of the sanity checks (Fig. 19-20).
//!
//! The five resource types match the paper's prototype exactly: CPU and
//! memory for every component, plus write IOps, write throughput and disk
//! usage for stateful components (§5.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
mod registry;
mod resource;
mod scaler;
mod series;

pub use registry::{MetricKey, MetricsRegistry};
pub use resource::ResourceKind;
pub use scaler::MinMaxScaler;
pub use series::TimeSeries;
