//! Property-based tests for the evaluation metrics and scalers.

use deeprest_metrics::eval::{
    anomalous_ranges, count_vector_accuracy, interval_coverage, interval_deviation, mae, mape,
    rmse, smape,
};
use deeprest_metrics::{MinMaxScaler, TimeSeries};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(0.0f64..100.0, len).prop_map(TimeSeries::from_values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn error_metrics_are_zero_iff_perfect(s in series(1..50)) {
        prop_assert_eq!(mape(&s, &s), 0.0);
        prop_assert_eq!(smape(&s, &s), 0.0);
        prop_assert_eq!(rmse(&s, &s), 0.0);
        prop_assert_eq!(mae(&s, &s), 0.0);
    }

    #[test]
    fn error_metrics_are_non_negative(
        pair in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..50),
    ) {
        let a: TimeSeries = pair.iter().map(|&(x, _)| x).collect();
        let e: TimeSeries = pair.iter().map(|&(_, y)| y).collect();
        prop_assert!(mape(&a, &e) >= 0.0);
        prop_assert!(smape(&a, &e) <= 200.0 + 1e-9);
        prop_assert!(rmse(&a, &e) >= mae(&a, &e) - 1e-12, "RMSE >= MAE");
    }

    #[test]
    fn coverage_is_a_fraction_and_complete_interval_covers(s in series(1..50)) {
        let lo: TimeSeries = s.values().iter().map(|v| v - 1.0).collect();
        let hi: TimeSeries = s.values().iter().map(|v| v + 1.0).collect();
        prop_assert_eq!(interval_coverage(&s, &lo, &hi), 1.0);
        let cov = interval_coverage(&s, &hi, &hi);
        prop_assert!((0.0..=1.0).contains(&cov));
    }

    #[test]
    fn deviation_is_zero_exactly_inside(s in series(2..50)) {
        let lo: TimeSeries = s.values().iter().map(|v| v - 0.5).collect();
        let hi: TimeSeries = s.values().iter().map(|v| v + 0.5).collect();
        let dev = interval_deviation(&s, &lo, &hi);
        prop_assert!(dev.values().iter().all(|&d| d == 0.0));

        // Pushing the actual above the interval produces positive scores.
        let bumped: TimeSeries = s.values().iter().map(|v| v + 10.0).collect();
        let dev = interval_deviation(&bumped, &lo, &hi);
        prop_assert!(dev.values().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn anomalous_ranges_are_sorted_disjoint_and_above_threshold(
        scores in proptest::collection::vec(0.0f64..1.0, 1..80),
        threshold in 0.1f64..0.9,
        min_len in 1usize..4,
    ) {
        let s = TimeSeries::from_values(scores.clone());
        let ranges = anomalous_ranges(&s, threshold, min_len);
        let mut prev_end = 0;
        for r in &ranges {
            prop_assert!(r.start >= prev_end, "ranges must be sorted/disjoint");
            prop_assert!(r.len() >= min_len);
            for &score in &scores[r.start..r.end] {
                prop_assert!(score > threshold);
            }
            prev_end = r.end;
        }
        // Completeness: every qualifying run is reported.
        let flagged: usize = ranges.iter().map(|r| r.len()).sum();
        let above = scores.iter().filter(|&&v| v > threshold).count();
        prop_assert!(flagged <= above);
    }

    #[test]
    fn scaler_round_trips_and_is_monotone(
        values in proptest::collection::vec(-50.0f64..50.0, 2..40),
        probe in -100.0f64..100.0,
    ) {
        let s = MinMaxScaler::fit(&values);
        prop_assert!((s.inverse(s.transform(probe)) - probe).abs() < 1e-9);
        // Monotone: transform preserves order.
        prop_assert!(s.transform(probe) <= s.transform(probe + 1.0));
    }

    #[test]
    fn count_vector_accuracy_is_bounded_and_identity_perfect(
        windows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..20.0, 4),
            1..10,
        ),
    ) {
        prop_assert_eq!(count_vector_accuracy(&windows, &windows), 100.0);
        let zeros: Vec<Vec<f64>> = windows.iter().map(|w| vec![0.0; w.len()]).collect();
        let acc = count_vector_accuracy(&windows, &zeros);
        prop_assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn moving_average_stays_within_min_max(s in series(1..60)) {
        let m = s.moving_average(5);
        prop_assert_eq!(m.len(), s.len());
        for &v in m.values() {
            prop_assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
        }
    }

    #[test]
    fn sparkline_never_panics_and_has_bounded_width(
        s in series(0..100),
        width in 0usize..50,
    ) {
        let line = s.sparkline(width);
        prop_assert!(line.chars().count() <= width);
    }
}
