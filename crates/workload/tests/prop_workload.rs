//! Property-based tests for workload generation.

use deeprest_workload::{TrafficShape, WorkloadSpec};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = TrafficShape> {
    prop_oneof![
        Just(TrafficShape::TwoPeak),
        Just(TrafficShape::Flat),
        Just(TrafficShape::SinglePeak),
        proptest::collection::vec(0.1f64..5.0, 4..16).prop_map(TrafficShape::Custom),
    ]
}

fn spec(users: f64, seed: u64, shape: TrafficShape, days: usize) -> WorkloadSpec {
    WorkloadSpec::new(
        users,
        vec![("/a".into(), 0.5), ("/b".into(), 0.3), ("/c".into(), 0.2)],
    )
    .with_seed(seed)
    .with_days(days)
    .with_windows_per_day(24)
    .with_shape(shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traffic_is_non_negative_and_correctly_sized(
        users in 1.0f64..500.0,
        seed in any::<u64>(),
        shape in arb_shape(),
        days in 1usize..4,
    ) {
        let t = spec(users, seed, shape, days).generate();
        prop_assert_eq!(t.window_count(), days * 24);
        prop_assert_eq!(t.days(), days);
        for w in 0..t.window_count() {
            prop_assert!(t.window(w).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn same_spec_same_traffic(users in 1.0f64..300.0, seed in any::<u64>()) {
        let a = spec(users, seed, TrafficShape::TwoPeak, 2).generate().total_series();
        let b = spec(users, seed, TrafficShape::TwoPeak, 2).generate().total_series();
        prop_assert_eq!(a.values(), b.values());
    }

    #[test]
    fn volume_is_roughly_proportional_to_users(
        users in 20.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let base = spec(users, seed, TrafficShape::Flat, 2).generate().grand_total();
        let double = spec(users * 2.0, seed, TrafficShape::Flat, 2)
            .generate()
            .grand_total();
        let ratio = double / base.max(1e-9);
        prop_assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn composition_tracks_mix_weights(seed in any::<u64>()) {
        let t = spec(100.0, seed, TrafficShape::TwoPeak, 3).generate();
        let comp = t.composition();
        let total: f64 = comp.iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let a = comp.iter().find(|(n, _)| n == "/a").unwrap().1;
        prop_assert!((a - 0.5).abs() < 0.08, "share of /a: {a}");
    }

    #[test]
    fn scale_is_exactly_linear(seed in any::<u64>(), factor in 0.1f64..5.0) {
        let t = spec(50.0, seed, TrafficShape::TwoPeak, 1).generate();
        let scaled = t.scale(factor);
        for w in 0..t.window_count() {
            prop_assert!((scaled.total_at(w) - factor * t.total_at(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn shape_profiles_normalize_to_mean_one(
        shape in arb_shape(),
        wpd in 1usize..200,
    ) {
        let p = shape.profile(wpd);
        prop_assert_eq!(p.len(), wpd);
        let mean = p.iter().sum::<f64>() / wpd as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn slice_then_extend_is_identity(seed in any::<u64>()) {
        let t = spec(80.0, seed, TrafficShape::TwoPeak, 2).generate();
        let mut head = t.slice(0..24);
        head.extend(&t.slice(24..48));
        let joined = head.total_series();
        let original = t.total_series();
        prop_assert_eq!(joined.values(), original.values());
    }
}
