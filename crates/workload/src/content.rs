//! Synthetic content models replacing the paper's real-world datasets.
//!
//! The paper seeds its social network with a Facebook graph (for realistic
//! user interactions) and the INRIA Person photos (for media payloads).
//! Those datasets only influence *per-request work*: how many followees a
//! timeline read fans out over, how large an uploaded photo is, how long a
//! post is. This module generates synthetic equivalents with matching
//! statistical character — a Zipf-like degree distribution for the social
//! graph and long-tailed payload sizes — so the simulator exercises the same
//! cost-variation code paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic social graph with a heavy-tailed follower distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SocialGraph {
    /// `followees[u]` is the number of accounts user `u` follows.
    followees: Vec<u32>,
}

impl SocialGraph {
    /// Generates a graph of `users` accounts whose followee counts follow a
    /// truncated Zipf distribution (exponent ≈ 1.6), the shape observed in
    /// real social networks.
    pub fn generate(users: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let followees = (0..users.max(1))
            .map(|_| sample_zipf(&mut rng, 1.6, 500) as u32)
            .collect();
        Self { followees }
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.followees.len()
    }

    /// Followee count of user `u`.
    pub fn followees(&self, u: usize) -> u32 {
        self.followees[u % self.followees.len()]
    }

    /// Mean followee count.
    pub fn mean_followees(&self) -> f64 {
        self.followees.iter().map(|&f| f64::from(f)).sum::<f64>() / self.followees.len() as f64
    }

    /// Samples a random user's followee count (the fan-out a home-timeline
    /// read or a post fan-out write touches).
    pub fn sample_fanout<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.followees[rng.gen_range(0..self.followees.len())]
    }
}

/// Payload-size distributions standing in for real post/photo content.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PayloadModel {
    /// Median photo size in KiB.
    pub media_kib_median: f64,
    /// Lognormal sigma of photo sizes.
    pub media_sigma: f64,
    /// Mean post length in characters.
    pub text_chars_mean: f64,
    /// Probability a post embeds a URL (triggering URL shortening).
    pub url_probability: f64,
    /// Probability a post mentions another user.
    pub mention_probability: f64,
}

impl Default for PayloadModel {
    fn default() -> Self {
        Self {
            // INRIA Person photos: "pictures of people with various
            // resolutions" — a long-tailed size distribution around ~100 KiB.
            media_kib_median: 120.0,
            media_sigma: 0.8,
            text_chars_mean: 140.0,
            url_probability: 0.25,
            mention_probability: 0.35,
        }
    }
}

impl PayloadModel {
    /// Samples a photo size in KiB (lognormal).
    pub fn sample_media_kib<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        self.media_kib_median * (self.media_sigma * z).exp()
    }

    /// Samples a post length in characters (exponential, min 1).
    pub fn sample_text_chars<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(1e-9..1.0);
        (self.text_chars_mean * -u.ln()).max(1.0)
    }

    /// Whether this post includes a URL.
    pub fn sample_has_url<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.url_probability)
    }

    /// Whether this post mentions another user.
    pub fn sample_has_mention<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.mention_probability)
    }
}

/// Samples from a Zipf distribution over `1..=max` with the given exponent
/// via inverse-CDF on a precomputed-free rejection-ish loop (max is small).
fn sample_zipf<R: Rng + ?Sized>(rng: &mut R, exponent: f64, max: usize) -> usize {
    // Direct inverse-transform on the discrete CDF would need a table; a
    // simple approach for small `max`: sample continuous Pareto and clamp.
    let u: f64 = rng.gen_range(1e-12..1.0);
    let x = (1.0 - u).powf(-1.0 / (exponent - 1.0));
    (x.round() as usize).clamp(1, max)
}

/// Box-Muller standard normal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_generation_is_deterministic() {
        let a = SocialGraph::generate(100, 5);
        let b = SocialGraph::generate(100, 5);
        assert_eq!(a.followees, b.followees);
    }

    #[test]
    fn graph_is_heavy_tailed() {
        let g = SocialGraph::generate(5_000, 1);
        let mean = g.mean_followees();
        let max = g.followees.iter().copied().max().unwrap();
        // Heavy tail: max dwarfs the mean.
        assert!(f64::from(max) > 10.0 * mean, "max {max} mean {mean}");
        assert!(mean >= 1.0);
    }

    #[test]
    fn fanout_samples_are_valid_counts() {
        let g = SocialGraph::generate(50, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let f = g.sample_fanout(&mut rng);
            assert!((1..=500).contains(&f));
        }
    }

    #[test]
    fn media_sizes_are_long_tailed_positive() {
        let m = PayloadModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..2_000).map(|_| m.sample_media_kib(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        // Lognormal: mean exceeds median.
        assert!(mean > median);
        assert!((median - 120.0).abs() < 30.0, "median {median}");
    }

    #[test]
    fn text_lengths_positive_with_expected_mean() {
        let m = PayloadModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..5_000).map(|_| m.sample_text_chars(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 140.0).abs() < 15.0, "mean {mean}");
    }
}
