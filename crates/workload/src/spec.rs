//! Workload specification and traffic generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{ApiTraffic, TrafficShape};

/// A declarative workload: who (scale), what (API mix), when (shape), for
/// how long, with how much stochastic variation.
///
/// `generate()` returns the expected requests per window per API. Determinism
/// is seeded: the same spec always yields the same traffic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of concurrent application users.
    pub users: f64,
    /// Expected requests each user issues per window at intensity 1.0.
    pub requests_per_user_per_window: f64,
    /// API endpoint mix: `(endpoint, weight)`; weights are normalized.
    pub mix: Vec<(String, f64)>,
    /// Intra-day traffic shape.
    pub shape: TrafficShape,
    /// Number of simulated days.
    pub days: usize,
    /// Scrape windows per day.
    pub windows_per_day: usize,
    /// Multiplicative day-to-day lognormal-ish jitter magnitude (0 disables;
    /// 0.05 means days vary by roughly ±5%).
    pub day_jitter: f64,
    /// Multiplicative per-window noise magnitude.
    pub window_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's defaults: two peak-hours per day, mild
    /// day-to-day variation, and the given API mix.
    pub fn new(users: f64, mix: Vec<(String, f64)>) -> Self {
        Self {
            users,
            requests_per_user_per_window: 0.6,
            mix,
            shape: TrafficShape::TwoPeak,
            days: 7,
            windows_per_day: 96,
            day_jitter: 0.06,
            window_noise: 0.05,
            seed: 17,
        }
    }

    /// Builder: sets the traffic shape.
    pub fn with_shape(mut self, shape: TrafficShape) -> Self {
        self.shape = shape;
        self
    }

    /// Builder: sets the duration in days.
    pub fn with_days(mut self, days: usize) -> Self {
        self.days = days;
        self
    }

    /// Builder: sets the windows per day.
    pub fn with_windows_per_day(mut self, windows_per_day: usize) -> Self {
        self.windows_per_day = windows_per_day;
        self
    }

    /// Builder: sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the user scale.
    pub fn with_users(mut self, users: f64) -> Self {
        self.users = users;
        self
    }

    /// Builder: replaces the API mix.
    pub fn with_mix(mut self, mix: Vec<(String, f64)>) -> Self {
        self.mix = mix;
        self
    }

    /// Generates the expected API traffic.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or has non-positive total weight, or if
    /// `days`/`windows_per_day` is zero.
    pub fn generate(&self) -> ApiTraffic {
        assert!(!self.mix.is_empty(), "WorkloadSpec: empty API mix");
        assert!(self.days > 0, "WorkloadSpec: days must be > 0");
        assert!(
            self.windows_per_day > 0,
            "WorkloadSpec: windows_per_day must be > 0"
        );
        let weight_total: f64 = self.mix.iter().map(|(_, w)| w).sum();
        assert!(
            weight_total > 0.0,
            "WorkloadSpec: mix weights must sum to a positive value"
        );

        let mut rng = StdRng::seed_from_u64(self.seed);
        let profile = self.shape.profile(self.windows_per_day);
        let apis: Vec<String> = self.mix.iter().map(|(a, _)| a.clone()).collect();
        let fractions: Vec<f64> = self.mix.iter().map(|(_, w)| w / weight_total).collect();
        let base = self.users * self.requests_per_user_per_window;

        let mut requests = Vec::with_capacity(self.days * self.windows_per_day);
        for _day in 0..self.days {
            let day_factor = jitter(&mut rng, self.day_jitter);
            // Mild per-day mix drift: users favor slightly different APIs on
            // different days, another "non-deterministic property".
            let day_mix: Vec<f64> = fractions
                .iter()
                .map(|&f| f * jitter(&mut rng, self.day_jitter * 0.5))
                .collect();
            let day_mix_total: f64 = day_mix.iter().sum();
            for &intensity in &profile {
                let total = base * intensity * day_factor;
                let row: Vec<f64> = day_mix
                    .iter()
                    .map(|&f| {
                        let expected = total * f / day_mix_total;
                        (expected * jitter(&mut rng, self.window_noise)).max(0.0)
                    })
                    .collect();
                requests.push(row);
            }
        }
        ApiTraffic::new(apis, self.windows_per_day, requests)
    }
}

/// A multiplicative jitter factor centered on 1.0.
fn jitter<R: Rng + ?Sized>(rng: &mut R, magnitude: f64) -> f64 {
    if magnitude <= 0.0 {
        return 1.0;
    }
    1.0 + rng.gen_range(-magnitude..magnitude)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(
            100.0,
            vec![
                ("/composePost".into(), 0.3),
                ("/readTimeline".into(), 0.6),
                ("/uploadMedia".into(), 0.1),
            ],
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a.total_series().values(), b.total_series().values());
        let c = spec().with_seed(99).generate();
        assert_ne!(a.total_series().values(), c.total_series().values());
    }

    #[test]
    fn volume_scales_with_users() {
        let base = spec().generate().grand_total();
        let double = spec().with_users(200.0).generate().grand_total();
        let ratio = double / base;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn composition_tracks_mix() {
        let t = spec().generate();
        let comp = t.composition();
        let read = comp
            .iter()
            .find(|(a, _)| a == "/readTimeline")
            .map(|(_, f)| *f)
            .unwrap();
        assert!((read - 0.6).abs() < 0.05, "read fraction {read}");
    }

    #[test]
    fn two_peak_traffic_has_intra_day_structure() {
        let t = spec().with_days(1).generate();
        let total = t.total_series();
        // Peak at least twice the trough.
        assert!(total.max() > 2.0 * total.min().max(1e-9));
    }

    #[test]
    fn flat_traffic_is_flatter_than_two_peak() {
        let flat = spec().with_shape(TrafficShape::Flat).generate();
        let peaky = spec().generate();
        let flat_cv = flat.total_series().std_dev() / flat.total_series().mean();
        let peaky_cv = peaky.total_series().std_dev() / peaky.total_series().mean();
        assert!(
            flat_cv < 0.5 * peaky_cv,
            "flat {flat_cv} vs peaky {peaky_cv}"
        );
    }

    #[test]
    fn window_and_day_counts() {
        let t = spec().with_days(3).with_windows_per_day(48).generate();
        assert_eq!(t.window_count(), 144);
        assert_eq!(t.days(), 3);
    }

    #[test]
    fn requests_are_non_negative() {
        let t = spec().with_seed(5).generate();
        for w in 0..t.window_count() {
            assert!(t.window(w).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "empty API mix")]
    fn rejects_empty_mix() {
        let _ = WorkloadSpec::new(10.0, vec![]).generate();
    }
}
