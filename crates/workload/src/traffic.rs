//! The generated API traffic: expected requests per window per endpoint.

use deeprest_metrics::TimeSeries;
use serde::{Deserialize, Serialize};

/// A multivariate traffic time-series: for every window `t` and API endpoint
/// `a`, the expected number of requests received in that window (the paper's
/// "requests per second for every exposed API endpoint", aggregated to the
/// scrape window).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApiTraffic {
    apis: Vec<String>,
    windows_per_day: usize,
    /// `requests[t][a]`: expected requests for API `a` in window `t`.
    requests: Vec<Vec<f64>>,
}

impl ApiTraffic {
    /// Creates traffic from raw per-window per-API expected request counts.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent API arity or `windows_per_day` is 0.
    pub fn new(apis: Vec<String>, windows_per_day: usize, requests: Vec<Vec<f64>>) -> Self {
        assert!(
            windows_per_day > 0,
            "ApiTraffic: windows_per_day must be > 0"
        );
        assert!(
            requests.iter().all(|r| r.len() == apis.len()),
            "ApiTraffic: row arity must match API count"
        );
        Self {
            apis,
            windows_per_day,
            requests,
        }
    }

    /// API endpoint names, in column order.
    pub fn apis(&self) -> &[String] {
        &self.apis
    }

    /// Column index of an API endpoint.
    pub fn api_index(&self, api: &str) -> Option<usize> {
        self.apis.iter().position(|a| a == api)
    }

    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.requests.len()
    }

    /// Windows per simulated day.
    pub fn windows_per_day(&self) -> usize {
        self.windows_per_day
    }

    /// Number of whole days covered.
    pub fn days(&self) -> usize {
        self.requests.len() / self.windows_per_day
    }

    /// Expected requests for each API in window `t`.
    pub fn window(&self, t: usize) -> &[f64] {
        &self.requests[t]
    }

    /// Expected total requests in window `t` across all APIs.
    pub fn total_at(&self, t: usize) -> f64 {
        self.requests[t].iter().sum()
    }

    /// Per-window total request series.
    pub fn total_series(&self) -> TimeSeries {
        (0..self.window_count()).map(|t| self.total_at(t)).collect()
    }

    /// Per-window series of one API.
    ///
    /// # Panics
    ///
    /// Panics if the API is unknown.
    pub fn api_series(&self, api: &str) -> TimeSeries {
        let idx = self
            .api_index(api)
            .unwrap_or_else(|| panic!("ApiTraffic::api_series: unknown API {api}"));
        self.requests.iter().map(|r| r[idx]).collect()
    }

    /// Total expected requests over the whole period.
    pub fn grand_total(&self) -> f64 {
        self.requests.iter().flatten().sum()
    }

    /// The fraction of requests going to each API over the whole period.
    pub fn composition(&self) -> Vec<(String, f64)> {
        let total = self.grand_total().max(1e-12);
        self.apis
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sum: f64 = self.requests.iter().map(|r| r[i]).sum();
                (a.clone(), sum / total)
            })
            .collect()
    }

    /// Scales all request counts by `factor` (e.g. "3x more users than
    /// ever").
    pub fn scale(&self, factor: f64) -> ApiTraffic {
        ApiTraffic {
            apis: self.apis.clone(),
            windows_per_day: self.windows_per_day,
            requests: self
                .requests
                .iter()
                .map(|r| r.iter().map(|v| v * factor).collect())
                .collect(),
        }
    }

    /// Keeps only windows in `range`, renumbered from zero.
    pub fn slice(&self, range: std::ops::Range<usize>) -> ApiTraffic {
        ApiTraffic {
            apis: self.apis.clone(),
            windows_per_day: self.windows_per_day,
            requests: self.requests[range].to_vec(),
        }
    }

    /// Concatenates another traffic block (same APIs, same windows per day)
    /// after this one.
    ///
    /// # Panics
    ///
    /// Panics if the API sets or windows-per-day differ.
    pub fn extend(&mut self, other: &ApiTraffic) {
        assert_eq!(self.apis, other.apis, "ApiTraffic::extend: API mismatch");
        assert_eq!(
            self.windows_per_day, other.windows_per_day,
            "ApiTraffic::extend: windows_per_day mismatch"
        );
        self.requests.extend(other.requests.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ApiTraffic {
        ApiTraffic::new(
            vec!["/composePost".into(), "/readTimeline".into()],
            2,
            vec![
                vec![1.0, 3.0],
                vec![2.0, 2.0],
                vec![0.0, 4.0],
                vec![1.0, 1.0],
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.window_count(), 4);
        assert_eq!(t.days(), 2);
        assert_eq!(t.total_at(0), 4.0);
        assert_eq!(
            t.api_series("/readTimeline").values(),
            &[3.0, 2.0, 4.0, 1.0]
        );
        assert_eq!(t.grand_total(), 14.0);
    }

    #[test]
    fn composition_sums_to_one() {
        let comp = sample().composition();
        let total: f64 = comp.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((comp[0].1 - 4.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_everything() {
        let t = sample().scale(3.0);
        assert_eq!(t.total_at(0), 12.0);
        assert_eq!(t.grand_total(), 42.0);
    }

    #[test]
    fn slice_and_extend() {
        let t = sample();
        let mut head = t.slice(0..2);
        assert_eq!(head.window_count(), 2);
        head.extend(&t.slice(2..4));
        assert_eq!(head.window_count(), 4);
        assert_eq!(head.total_series().values(), t.total_series().values());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_ragged_rows() {
        let _ = ApiTraffic::new(vec!["/a".into()], 1, vec![vec![1.0, 2.0]]);
    }
}
