//! API traffic generation for DeepRest experiments.
//!
//! Substitutes the paper's Locust-based workload generator (§5.1): it
//! produces the *expected requests per window per API endpoint* that drive
//! the application simulator, with the three workload characteristics the
//! paper's business scenarios vary:
//!
//! * **scale** — the number of concurrent application users (Fig. 13a/14),
//! * **API composition** — the mix of endpoints invoked (Fig. 13b/15),
//! * **traffic shape** — two peak-hours per day vs flat, etc. (Fig. 13c/16),
//!
//! plus day-to-day jitter and per-window noise "to mimic non-deterministic
//! properties in practice".
//!
//! The [`content`] module stands in for the real-world datasets the paper
//! imports (a Facebook social graph and INRIA photos): a synthetic Zipf
//! social graph and payload-size distributions with the same role — driving
//! per-request cost variation in the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
mod shape;
mod spec;
mod traffic;

pub use shape::TrafficShape;
pub use spec::WorkloadSpec;
pub use traffic::ApiTraffic;
