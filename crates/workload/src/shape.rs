//! Intra-day traffic shapes.

use serde::{Deserialize, Serialize};

/// The intra-day shape of API traffic intensity.
///
/// Profiles are normalized to mean 1.0 over a day, so the workload's `users`
/// scale controls total volume independently of shape — exactly the
/// separation the paper's "unseen traffic shape" scenario (Fig. 16) relies
/// on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Two peak-hours per day (e.g. lunchtime and late evening), the paper's
    /// default matching real-world social-network behavior (Fig. 9).
    TwoPeak,
    /// Flat traffic, e.g. a user base spread across many time zones
    /// (Fig. 13c).
    Flat,
    /// A single peak, e.g. an evening-only audience.
    SinglePeak,
    /// Arbitrary non-negative intensity profile, resampled to the window
    /// count and normalized to mean 1.0.
    Custom(Vec<f64>),
}

impl TrafficShape {
    /// The intensity profile over one day, sampled at `windows_per_day`
    /// points and normalized to mean 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `windows_per_day` is zero, or for
    /// [`TrafficShape::Custom`] profiles that are empty or not
    /// non-negative with positive mass.
    pub fn profile(&self, windows_per_day: usize) -> Vec<f64> {
        assert!(windows_per_day > 0, "profile: windows_per_day must be > 0");
        let raw: Vec<f64> = match self {
            TrafficShape::Flat => vec![1.0; windows_per_day],
            TrafficShape::TwoPeak => (0..windows_per_day)
                .map(|w| {
                    let t = w as f64 / windows_per_day as f64;
                    // Base load + lunchtime and late-evening peaks.
                    0.35 + 1.0 * gaussian(t, 0.50, 0.055) + 0.85 * gaussian(t, 0.82, 0.05)
                })
                .collect(),
            TrafficShape::SinglePeak => (0..windows_per_day)
                .map(|w| {
                    let t = w as f64 / windows_per_day as f64;
                    0.30 + 1.2 * gaussian(t, 0.65, 0.09)
                })
                .collect(),
            TrafficShape::Custom(profile) => {
                assert!(!profile.is_empty(), "profile: custom shape is empty");
                assert!(
                    profile.iter().all(|&v| v >= 0.0),
                    "profile: custom shape must be non-negative"
                );
                assert!(
                    profile.iter().sum::<f64>() > 0.0,
                    "profile: custom shape must have positive mass"
                );
                resample(profile, windows_per_day)
            }
        };
        normalize_mean(raw)
    }

    /// Number of local maxima in the day profile, a shape signature used by
    /// tests and the shape-change experiments.
    pub fn peak_count(&self, windows_per_day: usize) -> usize {
        let p = self.profile(windows_per_day);
        let mut count = 0;
        for w in 1..p.len().saturating_sub(1) {
            if p[w] > p[w - 1] && p[w] > p[w + 1] && p[w] > 1.2 {
                count += 1;
            }
        }
        count
    }
}

fn gaussian(t: f64, center: f64, width: f64) -> f64 {
    let d = (t - center) / width;
    (-0.5 * d * d).exp()
}

fn resample(profile: &[f64], n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let pos = i as f64 * profile.len() as f64 / n as f64;
            profile[(pos as usize).min(profile.len() - 1)]
        })
        .collect()
}

fn normalize_mean(values: Vec<f64>) -> Vec<f64> {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.into_iter().map(|v| v / mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_mean_one() {
        for shape in [
            TrafficShape::TwoPeak,
            TrafficShape::Flat,
            TrafficShape::SinglePeak,
            TrafficShape::Custom(vec![1.0, 5.0, 2.0]),
        ] {
            let p = shape.profile(96);
            let mean = p.iter().sum::<f64>() / p.len() as f64;
            assert!((mean - 1.0).abs() < 1e-9, "{shape:?} mean {mean}");
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn two_peak_has_two_peaks_and_flat_has_none() {
        assert_eq!(TrafficShape::TwoPeak.peak_count(96), 2);
        assert_eq!(TrafficShape::Flat.peak_count(96), 0);
        assert_eq!(TrafficShape::SinglePeak.peak_count(96), 1);
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = TrafficShape::Flat.profile(10);
        assert!(p.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn custom_profile_resamples() {
        let p = TrafficShape::Custom(vec![0.0, 2.0]).profile(4);
        assert_eq!(p.len(), 4);
        // First half low, second half high.
        assert!(p[0] < p[3]);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn custom_rejects_negative_values() {
        let _ = TrafficShape::Custom(vec![1.0, -1.0]).profile(4);
    }
}
