//! Deterministic lane-blocked SIMD kernels.
//!
//! Every contraction in the crate (dot products, GEMV, GEMM in all three
//! transpose layouts) is built on one accumulation contract:
//!
//! * Partial sums live in a fixed array of [`LANES`]` = 8` accumulators.
//!   Term `k` of a contraction is added into lane `k % LANES`, in ascending
//!   `k` order within each lane. Ragged tails (`len % LANES != 0`) fill
//!   lanes `0..len % LANES` in the same positions the main loop would have
//!   used.
//! * The eight lanes are reduced in a fixed binary-tree order:
//!   `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
//!
//! Because the contract fixes where every rounding happens, the result is a
//! pure function of the operand *values* — independent of ISA, autovector
//! width, thread count, and dispatch path. The compiler autovectorizes the
//! lane loop (it is exactly one AVX2 `f32x8` / two NEON `f32x4` ops wide)
//! without any `unsafe`; an optional runtime-detected AVX2 path uses
//! explicit `_mm256_mul_ps`/`_mm256_add_ps` (never FMA, which would contract
//! the multiply-add and change the bits) and is proven bit-identical to the
//! portable kernel by proptest.
//!
//! # Sparse inputs and signed zero
//!
//! The GEMV kernel may skip terms whose `x[k]` operand is `0.0` (positive
//! or negative zero). For finite inputs this is bit-exact, not merely
//! approximate: a lane accumulator seeded at `+0.0` can never become `-0.0`
//! (adding `-0.0` leaves any value unchanged, and exact cancellation yields
//! `+0.0` under round-to-nearest), so adding `a * 0.0 == ±0.0` to a lane is
//! a bitwise no-op. NaN and infinity operands are outside the kernel
//! contract (they would turn `±0.0` products into NaN).

/// Number of parallel accumulator lanes in every contraction kernel.
pub const LANES: usize = 8;

/// Minimum contraction length before the GEMV sparse path is considered;
/// below this the zero-scan costs more than the skipped multiplies save.
const SPARSE_MIN_COLS: usize = 16;

/// Fraction (numerator/denominator of 3/4) of aligned `LANES`-wide chunks
/// that must be entirely zero before the sparse GEMV path dispatches.
/// Measured on the estimator's masked-feature vectors: ablation masks zero
/// out entire API groups (contiguous runs), so masked inputs are either
/// dense (training) or blockily zero (counterfactual queries) — chunk
/// granularity matches what the sparse kernel can actually skip, and a high
/// threshold keeps the dense path branch-free for the common case.
const SPARSE_NUM: usize = 3;
const SPARSE_DEN: usize = 4;

/// Reduces the eight lane accumulators in the fixed tree order
/// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
///
/// This exact association is part of the kernel contract; every dispatch
/// path (portable, AVX2, sparse) funnels through it.
#[inline(always)]
fn reduce(acc: [f32; LANES]) -> f32 {
    let s01 = acc[0] + acc[1];
    let s23 = acc[2] + acc[3];
    let s45 = acc[4] + acc[5];
    let s67 = acc[6] + acc[7];
    (s01 + s23) + (s45 + s67)
}

/// Portable lane-blocked dot product. The `LANES`-wide inner loop carries no
/// cross-iteration dependency, so the compiler autovectorizes it to one
/// vector multiply + add per chunk.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length.
#[inline]
pub fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "kernel::dot: length mismatch");
    let mut acc = [0.0f32; LANES];
    let main = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(main);
    let (b_main, b_tail) = b.split_at(main);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (&x, &y)) in a_tail.iter().zip(b_tail.iter()).enumerate() {
        acc[j] += x * y;
    }
    reduce(acc)
}

/// Lane-blocked dot product that skips aligned `LANES`-wide chunks of `b`
/// that are entirely zero (plus zero terms in the ragged tail).
///
/// Bit-identical to [`dot_portable`] for finite inputs: skipped terms
/// contribute `a * ±0.0 == ±0.0`, which is a bitwise no-op on a lane
/// accumulator that started at `+0.0` (see the module docs for the signed
/// zero argument). Skipping at chunk granularity keeps the non-skipped
/// work vectorizable — one branch per `LANES` terms instead of one per
/// term, so blocky zero runs (masked-out feature groups) are elided at
/// full speed while mixed chunks run the same lane loop as the dense
/// kernel. Used by the sparse GEMV path.
#[inline]
pub fn dot_sparse(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "kernel::dot_sparse: length mismatch");
    let mut acc = [0.0f32; LANES];
    let main = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(main);
    let (b_main, b_tail) = b.split_at(main);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        if cb.iter().all(|&v| v == 0.0) {
            continue;
        }
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (&x, &y)) in a_tail.iter().zip(b_tail.iter()).enumerate() {
        if y != 0.0 {
            acc[j] += x * y;
        }
    }
    reduce(acc)
}

/// Explicit AVX2 kernels, runtime-gated. Same lane assignment and reduction
/// order as the portable path: eight vertical lanes accumulated with
/// separate `_mm256_mul_ps` + `_mm256_add_ps` (no FMA — the portable scalar
/// code does not contract the multiply-add, so neither may this path), then
/// the shared scalar [`reduce`] tree. The only `unsafe` in the crate; the
/// bit-identity contract is enforced by `tests/prop_kernels.rs`.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{reduce, LANES};
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// Whether the running CPU supports AVX2 (cached after first probe).
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// AVX2 dot product; caller must have checked [`available`].
    ///
    /// # Safety
    ///
    /// Requires AVX2 support on the running CPU.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / LANES;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            // SAFETY: c * LANES + LANES <= a.len() == b.len().
            let va = _mm256_loadu_ps(a.as_ptr().add(c * LANES));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c * LANES));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let main = chunks * LANES;
        for (j, (&x, &y)) in a[main..].iter().zip(b[main..].iter()).enumerate() {
            lanes[j] += x * y;
        }
        reduce(lanes)
    }

    /// One `LANES`-wide column block of one output row of `out = a * b`:
    /// `out_blk[jj] = sum_kk a_row[kk] * b[kk * stride + jj]`, where `b`
    /// points at the block's first column (strided view of the right
    /// operand, or a packed slab with `stride == LANES`).
    ///
    /// Eight vector accumulators, one per k-lane; element `jj` of `acc[l]`
    /// receives exactly the terms the portable tile puts in `acc[l][jj]`,
    /// in the same order, with separate multiply and add. The cross-lane
    /// reduce happens as three rounds of elementwise vector adds in the
    /// contract's tree shape, so all eight columns are reduced at once.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `out_blk.len() >= LANES`, and `LANES` floats readable
    /// at `b + kk * stride` for every `kk < a_row.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_row_block(out_blk: &mut [f32], a_row: &[f32], b: *const f32, stride: usize) {
        let k = a_row.len();
        let chunks = k / LANES;
        // Eight named accumulators: an indexed `[__m256; LANES]` tile is
        // not reliably register-allocated, and a spilled tile doubles the
        // memory traffic of the inner loop.
        let mut acc = (
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        );
        macro_rules! lane {
            ($acc:expr, $kk:expr) => {
                // SAFETY: $kk < k, and the caller guarantees LANES floats
                // are readable at b + $kk * stride.
                let av = _mm256_set1_ps(*a_row.get_unchecked($kk));
                let bv = _mm256_loadu_ps(b.add($kk * stride));
                $acc = _mm256_add_ps($acc, _mm256_mul_ps(av, bv));
            };
        }
        for c in 0..chunks {
            let base = c * LANES;
            lane!(acc.0, base);
            lane!(acc.1, base + 1);
            lane!(acc.2, base + 2);
            lane!(acc.3, base + 3);
            lane!(acc.4, base + 4);
            lane!(acc.5, base + 5);
            lane!(acc.6, base + 6);
            lane!(acc.7, base + 7);
        }
        for (l, kk) in (chunks * LANES..k).enumerate() {
            match l {
                0 => {
                    lane!(acc.0, kk);
                }
                1 => {
                    lane!(acc.1, kk);
                }
                2 => {
                    lane!(acc.2, kk);
                }
                3 => {
                    lane!(acc.3, kk);
                }
                4 => {
                    lane!(acc.4, kk);
                }
                5 => {
                    lane!(acc.5, kk);
                }
                _ => {
                    lane!(acc.6, kk);
                }
            }
        }
        let s01 = _mm256_add_ps(acc.0, acc.1);
        let s23 = _mm256_add_ps(acc.2, acc.3);
        let s45 = _mm256_add_ps(acc.4, acc.5);
        let s67 = _mm256_add_ps(acc.6, acc.7);
        let sum = _mm256_add_ps(_mm256_add_ps(s01, s23), _mm256_add_ps(s45, s67));
        _mm256_storeu_ps(out_blk.as_mut_ptr(), sum);
    }

    /// One `LANES`-wide block of `a`'s columns contracted against column
    /// `j` of `b` for `out = a^T * b`:
    /// `vals[ii] = sum_kk a[kk * stride + ii] * b[kk * n + j]`, where `a`
    /// points at the block's first column (strided view of the left
    /// operand, or a packed slab with `stride == LANES`).
    ///
    /// Mirror of [`gemm_row_block`] with the broadcast on `b`'s side; the
    /// caller scatters `vals` into `out`'s column-strided layout.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `LANES` floats readable at `a + kk * stride` for
    /// every `kk < k`, and `(k - 1) * n + j < b.len()` when `k > 0`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tn_block(
        vals: &mut [f32; LANES],
        a: *const f32,
        stride: usize,
        b: &[f32],
        n: usize,
        j: usize,
        k: usize,
    ) {
        let chunks = k / LANES;
        // Named accumulators for the same register-allocation reason as
        // [`gemm_row_block`].
        let mut acc = (
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        );
        macro_rules! lane {
            ($acc:expr, $kk:expr) => {
                // SAFETY: $kk < k; the caller guarantees LANES floats are
                // readable at a + $kk * stride, and that column j of `b`
                // exists in every row.
                let bv = _mm256_set1_ps(*b.get_unchecked($kk * n + j));
                let av = _mm256_loadu_ps(a.add($kk * stride));
                $acc = _mm256_add_ps($acc, _mm256_mul_ps(av, bv));
            };
        }
        for c in 0..chunks {
            let base = c * LANES;
            lane!(acc.0, base);
            lane!(acc.1, base + 1);
            lane!(acc.2, base + 2);
            lane!(acc.3, base + 3);
            lane!(acc.4, base + 4);
            lane!(acc.5, base + 5);
            lane!(acc.6, base + 6);
            lane!(acc.7, base + 7);
        }
        for (l, kk) in (chunks * LANES..k).enumerate() {
            match l {
                0 => {
                    lane!(acc.0, kk);
                }
                1 => {
                    lane!(acc.1, kk);
                }
                2 => {
                    lane!(acc.2, kk);
                }
                3 => {
                    lane!(acc.3, kk);
                }
                4 => {
                    lane!(acc.4, kk);
                }
                5 => {
                    lane!(acc.5, kk);
                }
                _ => {
                    lane!(acc.6, kk);
                }
            }
        }
        let s01 = _mm256_add_ps(acc.0, acc.1);
        let s23 = _mm256_add_ps(acc.2, acc.3);
        let s45 = _mm256_add_ps(acc.4, acc.5);
        let s67 = _mm256_add_ps(acc.6, acc.7);
        let sum = _mm256_add_ps(_mm256_add_ps(s01, s23), _mm256_add_ps(s45, s67));
        _mm256_storeu_ps(vals.as_mut_ptr(), sum);
    }
}

/// AVX2 dot product when the path is compiled in *and* the CPU supports it;
/// `None` otherwise. Exposed so the kernel-equivalence proptest can pit it
/// directly against [`dot_portable`] regardless of what [`dot`] dispatches.
#[inline]
pub fn dot_avx2(a: &[f32], b: &[f32]) -> Option<f32> {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2::available() {
            // SAFETY: AVX2 support was just verified at runtime.
            #[allow(unsafe_code)]
            return Some(unsafe { avx2::dot(a, b) });
        }
    }
    let _ = (a, b);
    None
}

/// Lane-blocked dot product: dispatches to the AVX2 path when available,
/// the portable autovectorized path otherwise. Both produce identical bits.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_avx2(a, b).unwrap_or_else(|| dot_portable(a, b))
}

/// Returns `true` when `x` is zero-laden enough for the sparse GEMV path:
/// at least [`SPARSE_MIN_COLS`] long with >= 3/4 of its aligned
/// `LANES`-wide chunks entirely zero. Chunk (not element) granularity
/// matches what [`dot_sparse`] can actually skip: scattered zeros inside
/// live chunks save nothing, so they must not trigger the dispatch.
#[inline]
fn sparse_worthwhile(x: &[f32]) -> bool {
    if x.len() < SPARSE_MIN_COLS {
        return false;
    }
    let chunks = x.len() / LANES;
    // The GEMV sparse path tracks live chunks in a u128 mask; longer
    // vectors stay on the dense path rather than growing the mask.
    if chunks == 0 || chunks > u128::BITS as usize {
        return false;
    }
    let zero_chunks = x
        .chunks_exact(LANES)
        .filter(|c| c.iter().all(|&v| v == 0.0))
        .count();
    zero_chunks * SPARSE_DEN >= chunks * SPARSE_NUM
}

/// GEMV: `out[i] = a_row_i . x` for a row-major `(rows, cols)` matrix `a`.
///
/// Dispatches per call: if `x` is blockily zero (>= 3/4 of its aligned
/// `LANES`-chunks entirely zero — the shape telemetry-measured ablation
/// masks produce) the sparse dot kernel runs and a `kernel.sparse_hits`
/// counter fires; otherwise the dense lane-blocked dot runs. Both paths
/// produce identical bits for finite inputs.
///
/// # Panics
///
/// Panics (in debug builds) on shape mismatch.
pub fn gemv_into(out: &mut [f32], a: &[f32], rows: usize, cols: usize, x: &[f32]) {
    debug_assert_eq!(a.len(), rows * cols, "kernel::gemv: bad matrix length");
    debug_assert_eq!(out.len(), rows, "kernel::gemv: bad output length");
    debug_assert_eq!(x.len(), cols, "kernel::gemv: bad vector length");
    if sparse_worthwhile(x) {
        deeprest_telemetry::counter("kernel.sparse_hits", 1);
        // `x` is shared by every row, so the zero scan happens once: bit c
        // of `live` marks an aligned chunk with at least one nonzero.
        // Rows then visit only live chunks (ascending, preserving the
        // contract order; skipped chunks are bitwise no-ops — see the
        // module docs) plus the ragged tail.
        let main = cols - cols % LANES;
        let mut live: u128 = 0;
        for (c, chunk) in x[..main].chunks_exact(LANES).enumerate() {
            if chunk.iter().any(|&v| v != 0.0) {
                live |= 1u128 << c;
            }
        }
        for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
            let mut acc = [0.0f32; LANES];
            let mut m = live;
            while m != 0 {
                let c = m.trailing_zeros() as usize;
                m &= m - 1;
                let base = c * LANES;
                let ca: &[f32; LANES] = row[base..base + LANES].try_into().unwrap();
                let cb: &[f32; LANES] = x[base..base + LANES].try_into().unwrap();
                for j in 0..LANES {
                    acc[j] += ca[j] * cb[j];
                }
            }
            for (j, (&rv, &xv)) in row[main..].iter().zip(x[main..].iter()).enumerate() {
                if xv != 0.0 {
                    acc[j] += rv * xv;
                }
            }
            *o = reduce(acc);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if avx2::available() {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
                // SAFETY: AVX2 support was just verified at runtime.
                #[allow(unsafe_code)]
                {
                    *o = unsafe { avx2::dot(row, x) };
                }
            }
            return;
        }
    }
    for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
        *o = dot_portable(row, x);
    }
}

/// GEMM, no transposes: `out = a * b` with `a` `(m, k)`, `b` `(k, n)`, all
/// row-major.
///
/// Largest contraction length the on-stack pack buffer covers; larger `k`
/// falls back to strided loads.
const PACK_MAX_K: usize = 512;

/// Minimum strided-operand size (in elements) before a GEMM packs the
/// current `LANES`-wide slab into the contiguous buffer. Below this the
/// whole operand is L1-resident and the copy is pure overhead; above it
/// the slab's strided rows alias a handful of cache sets (a 512-byte row
/// stride touches every eighth set) and get evicted between reuses.
const PACK_MIN_ELEMS: usize = 64 * 64;

/// One full-width (`LANES`-column) block of one output row:
/// `out_blk[jj] = sum_kk a_row[kk] * b[off + kk * stride + jj]`, following
/// the contract accumulation order. `stride` is `n` for a strided view of
/// the right operand or `LANES` for a packed slab.
#[inline]
fn gemm_row_block(out_blk: &mut [f32], a_row: &[f32], b: &[f32], off: usize, stride: usize) {
    debug_assert!(a_row.is_empty() || off + (a_row.len() - 1) * stride + LANES <= b.len());
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: AVX2 verified at runtime; the debug assertion above
        // states the in-bounds contract the callers uphold.
        #[allow(unsafe_code)]
        unsafe {
            avx2::gemm_row_block(out_blk, a_row, b.as_ptr().add(off), stride);
        }
        return;
    }
    let k = a_row.len();
    let chunks = k / LANES;
    let mut acc = [[0.0f32; LANES]; LANES];
    for c in 0..chunks {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            let kk = c * LANES + l;
            let av = a_row[kk];
            let base = off + kk * stride;
            let b_blk: &[f32; LANES] = b[base..base + LANES].try_into().unwrap();
            for jj in 0..LANES {
                acc_l[jj] += av * b_blk[jj];
            }
        }
    }
    for (l, kk) in (chunks * LANES..k).enumerate() {
        let av = a_row[kk];
        let base = off + kk * stride;
        let b_blk: &[f32; LANES] = b[base..base + LANES].try_into().unwrap();
        let acc_l = &mut acc[l];
        for jj in 0..LANES {
            acc_l[jj] += av * b_blk[jj];
        }
    }
    for jj in 0..LANES {
        out_blk[jj] = reduce(core::array::from_fn(|l| acc[l][jj]));
    }
}

/// The final partial (`w < LANES` column) block of every output row of
/// `out = a * b`; dynamic-width, same accumulation order.
fn gemm_partial_cols(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    let jb = n - n % LANES;
    if jb == n {
        return;
    }
    let w = n - jb;
    let chunks = k / LANES;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut acc = [[0.0f32; LANES]; LANES];
        for c in 0..chunks {
            for (l, acc_l) in acc.iter_mut().enumerate() {
                let kk = c * LANES + l;
                let av = a_row[kk];
                let b_blk = &b[kk * n + jb..kk * n + jb + w];
                for (jj, &bv) in b_blk.iter().enumerate() {
                    acc_l[jj] += av * bv;
                }
            }
        }
        for (l, kk) in (chunks * LANES..k).enumerate() {
            let av = a_row[kk];
            let b_blk = &b[kk * n + jb..kk * n + jb + w];
            for (jj, &bv) in b_blk.iter().enumerate() {
                acc[l][jj] += av * bv;
            }
        }
        for jj in 0..w {
            out_row[jb + jj] = reduce(core::array::from_fn(|l| acc[l][jj]));
        }
    }
}

/// The output is produced in `LANES`-wide column blocks; each block carries
/// a `[k-lane][column]` register tile so that every output element observes
/// exactly the contract accumulation order (term `kk` in lane `kk % LANES`,
/// reduced by [`reduce`]). Blocks are walked column-outer / row-inner so one
/// block's slab of `b` (`k * LANES` floats) stays cache-resident across
/// every row of `a`; when `b` is large enough for its strided slab rows to
/// thrash cache sets, the slab is first packed contiguously (a value copy —
/// bits are unaffected). The final partial block takes a dynamic-width
/// path. `out` is fully overwritten.
pub fn gemm_into(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    debug_assert_eq!(a.len(), m * k, "kernel::gemm: bad lhs length");
    debug_assert_eq!(b.len(), k * n, "kernel::gemm: bad rhs length");
    debug_assert_eq!(out.len(), m * n, "kernel::gemm: bad output length");
    if k <= PACK_MAX_K && k * n >= PACK_MIN_ELEMS && n >= LANES {
        let mut slab = [0.0f32; LANES * PACK_MAX_K];
        let mut jb = 0;
        while jb + LANES <= n {
            for kk in 0..k {
                let src: &[f32; LANES] = b[kk * n + jb..kk * n + jb + LANES].try_into().unwrap();
                slab[kk * LANES..(kk + 1) * LANES].copy_from_slice(src);
            }
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                gemm_row_block(
                    &mut out[i * n + jb..i * n + jb + LANES],
                    a_row,
                    &slab,
                    0,
                    LANES,
                );
            }
            jb += LANES;
        }
    } else {
        let mut jb = 0;
        while jb + LANES <= n {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                gemm_row_block(&mut out[i * n + jb..i * n + jb + LANES], a_row, b, jb, n);
            }
            jb += LANES;
        }
    }
    gemm_partial_cols(out, a, m, k, b, n);
}

/// GEMM with transposed right operand: `out = a * b^T` with `a` `(m, k)`,
/// `b` `(n, k)`, without materializing the transpose.
///
/// Every output element is a dot of two contiguous rows, so this simply runs
/// the dispatching [`dot`] kernel per element — the per-element accumulation
/// order is identical to [`gemm_into`] on a materialized transpose, so the
/// results are bit-for-bit the same.
pub fn gemm_nt_into(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    debug_assert_eq!(a.len(), m * k, "kernel::gemm_nt: bad lhs length");
    debug_assert_eq!(b.len(), n * k, "kernel::gemm_nt: bad rhs length");
    debug_assert_eq!(out.len(), m * n, "kernel::gemm_nt: bad output length");
    if n == 1 {
        // `b` is a single `k`-length row shared by every output element, so
        // this is exactly [`gemv_into`]'s shape — the same `n == 1` fix
        // `gemm_tn` got its dedicated [`gemv_t_into`] path for. The GEMV
        // dispatch (sparse / AVX2 / portable) is bit-identical to the
        // per-element dot below for finite inputs.
        gemv_into(out, a, m, k, b);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if avx2::available() {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k.max(1))) {
                    // SAFETY: AVX2 support was just verified at runtime.
                    #[allow(unsafe_code)]
                    {
                        *o = unsafe { avx2::dot(a_row, b_row) };
                    }
                }
            }
            return;
        }
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k.max(1))) {
            *o = dot_portable(a_row, b_row);
        }
    }
}

/// Accumulating `a * b^T`: `out[i*n + j] += a_row_i . b_row_j` with `a`
/// `(m, k)` and `b` `(n, k)`, both row-major.
///
/// Each contribution runs the dispatching [`dot`] kernel on two contiguous
/// rows — the exact per-element bits of [`gemm_nt_into`] — so
/// `gemm_nt_acc_into(out, ..)` is bit-identical to `gemm_nt_into(tmp, ..)`
/// followed by `out += tmp`, without the temporary. The analytic training
/// backward uses this for outer-product weight gradients (`d ⊗ x^T` is the
/// `k == 1` case) accumulated across timesteps.
pub fn gemm_nt_acc_into(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    debug_assert_eq!(a.len(), m * k, "kernel::gemm_nt_acc: bad lhs length");
    debug_assert_eq!(b.len(), n * k, "kernel::gemm_nt_acc: bad rhs length");
    debug_assert_eq!(out.len(), m * n, "kernel::gemm_nt_acc: bad output length");
    if k == 1 {
        // Rank-1 outer product: a length-1 dot is `0.0 + a·b` (the
        // zero-seeded lane accumulator absorbs the product and the tree
        // reduce adds only `+0.0`s), so `(a·b) + 0.0` reproduces its bits
        // exactly — including the `-0.0 → +0.0` normalization — without a
        // kernel-dispatch call per output element. This path carries the
        // analytic backward's per-timestep weight gradients, where the
        // per-element `dot` overhead would dominate the whole sweep.
        for (av, out_row) in a.iter().zip(out.chunks_exact_mut(n.max(1))) {
            for (o, &bv) in out_row.iter_mut().zip(b.iter()) {
                *o += (av * bv) + 0.0;
            }
        }
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k.max(1))) {
            *o += dot(a_row, b_row);
        }
    }
}

/// GEMM with transposed left operand: `out = a^T * b` with `a` `(k, m)`,
/// `b` `(k, n)`, without materializing the transpose.
///
/// One `LANES`-wide block of `a`'s columns contracted against column `j`
/// of `b`: `vals[ii] = sum_kk a[off + kk * stride + ii] * b[kk * n + j]`,
/// following the contract accumulation order. `stride` is `m` for a
/// strided view of the left operand or `LANES` for a packed slab.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the raw-pointer AVX2 kernel signature
fn gemm_tn_block(
    vals: &mut [f32; LANES],
    a: &[f32],
    off: usize,
    stride: usize,
    b: &[f32],
    n: usize,
    j: usize,
    k: usize,
) {
    debug_assert!(k == 0 || off + (k - 1) * stride + LANES <= a.len());
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: AVX2 verified at runtime; the debug assertion above
        // states the in-bounds contract the callers uphold.
        #[allow(unsafe_code)]
        unsafe {
            avx2::gemm_tn_block(vals, a.as_ptr().add(off), stride, b, n, j, k);
        }
        return;
    }
    let chunks = k / LANES;
    let mut acc = [[0.0f32; LANES]; LANES];
    for c in 0..chunks {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            let kk = c * LANES + l;
            let bv = b[kk * n + j];
            let base = off + kk * stride;
            let a_blk: &[f32; LANES] = a[base..base + LANES].try_into().unwrap();
            for ii in 0..LANES {
                acc_l[ii] += a_blk[ii] * bv;
            }
        }
    }
    for (l, kk) in (chunks * LANES..k).enumerate() {
        let bv = b[kk * n + j];
        let base = off + kk * stride;
        let a_blk: &[f32; LANES] = a[base..base + LANES].try_into().unwrap();
        let acc_l = &mut acc[l];
        for ii in 0..LANES {
            acc_l[ii] += a_blk[ii] * bv;
        }
    }
    for ii in 0..LANES {
        vals[ii] = reduce(core::array::from_fn(|l| acc[l][ii]));
    }
}

/// The final partial (`w < LANES`) block of `a`-column rows of
/// `out = a^T * b`; dynamic-width, same accumulation order.
fn gemm_tn_partial_rows(out: &mut [f32], a: &[f32], k: usize, m: usize, b: &[f32], n: usize) {
    let ib = m - m % LANES;
    if ib == m {
        return;
    }
    let w = m - ib;
    let chunks = k / LANES;
    for j in 0..n {
        let mut acc = [[0.0f32; LANES]; LANES];
        for c in 0..chunks {
            for (l, acc_l) in acc.iter_mut().enumerate() {
                let kk = c * LANES + l;
                let bv = b[kk * n + j];
                let a_blk = &a[kk * m + ib..kk * m + ib + w];
                for (ii, &av) in a_blk.iter().enumerate() {
                    acc_l[ii] += av * bv;
                }
            }
        }
        for (l, kk) in (chunks * LANES..k).enumerate() {
            let bv = b[kk * n + j];
            let a_blk = &a[kk * m + ib..kk * m + ib + w];
            for (ii, &av) in a_blk.iter().enumerate() {
                acc[l][ii] += av * bv;
            }
        }
        for ii in 0..w {
            out[(ib + ii) * n + j] = reduce(core::array::from_fn(|l| acc[l][ii]));
        }
    }
}

/// Transposed GEMV: `out = a^T * x` with `a` `(k, m)` row-major and `x` a
/// `k`-vector, without materializing the transpose.
///
/// The packed `gemm_tn` path is a pessimization here: packing gathers a
/// strided `LANES`-column slab of `a` that a single right-hand column then
/// uses exactly once, so the copy is pure overhead (it roughly doubles the
/// memory traffic and is the reason `matmul/tn/128x128x1` trailed
/// `matmul/nn` ~3×). Instead each `LANES`-wide block of `a`'s columns is
/// contracted directly from the strided operand — per row of `a` that is
/// one contiguous `LANES`-float load, so the walk streams `a` row-major
/// once per block. The accumulation order is the shared [`gemm_tn_block`]
/// tile (term `kk` in lane `kk % LANES`, tree [`reduce`]), so the bits are
/// identical to [`gemm_tn_into`]'s packed path and to [`gemm_into`] on a
/// materialized transpose.
pub fn gemv_t_into(out: &mut [f32], a: &[f32], k: usize, m: usize, x: &[f32]) {
    gemv_t_impl(out, a, k, m, x, |o, v| *o = v);
}

/// Accumulating transposed GEMV: `out[i] += (a^T * x)[i]`.
///
/// Each contribution carries exactly the bits of the corresponding
/// [`gemv_t_into`] element (the shared [`gemm_tn_block`] tile and tail), so
/// `gemv_t_acc_into(out, ..)` is bit-identical to `gemv_t_into(tmp, ..)`
/// followed by `out[i] += tmp[i]` — without the temporary. This is the
/// analytic training backward's accumulation primitive for
/// `U^T · d` hidden-state and `W^T · d` input gradients.
pub fn gemv_t_acc_into(out: &mut [f32], a: &[f32], k: usize, m: usize, x: &[f32]) {
    gemv_t_impl(out, a, k, m, x, |o, v| *o += v);
}

/// Shared body of [`gemv_t_into`] / [`gemv_t_acc_into`]: computes each
/// contract-ordered output element and hands it to `store` (plain
/// assignment or `+=`). Full-width blocks run the shared
/// [`gemm_tn_block`] tile; the ragged tail replays
/// [`gemm_tn_partial_rows`]'s dynamic-width tile with `n == 1`, so element
/// bits are independent of which `store` is used.
#[inline(always)]
fn gemv_t_impl(
    out: &mut [f32],
    a: &[f32],
    k: usize,
    m: usize,
    x: &[f32],
    store: impl Fn(&mut f32, f32),
) {
    debug_assert_eq!(a.len(), k * m, "kernel::gemv_t: bad matrix length");
    debug_assert_eq!(x.len(), k, "kernel::gemv_t: bad vector length");
    debug_assert_eq!(out.len(), m, "kernel::gemv_t: bad output length");
    let mut vals = [0.0f32; LANES];
    let mut ib = 0;
    while ib + LANES <= m {
        gemm_tn_block(&mut vals, a, ib, m, x, 1, 0, k);
        for (o, &v) in out[ib..ib + LANES].iter_mut().zip(vals.iter()) {
            store(o, v);
        }
        ib += LANES;
    }
    if ib < m {
        let w = m - ib;
        let chunks = k / LANES;
        let mut acc = [[0.0f32; LANES]; LANES];
        for c in 0..chunks {
            for (l, acc_l) in acc.iter_mut().enumerate() {
                let kk = c * LANES + l;
                let xv = x[kk];
                let a_blk = &a[kk * m + ib..kk * m + ib + w];
                for (ii, &av) in a_blk.iter().enumerate() {
                    acc_l[ii] += av * xv;
                }
            }
        }
        for (l, kk) in (chunks * LANES..k).enumerate() {
            let xv = x[kk];
            let a_blk = &a[kk * m + ib..kk * m + ib + w];
            for (ii, &av) in a_blk.iter().enumerate() {
                acc[l][ii] += av * xv;
            }
        }
        for ii in 0..w {
            store(
                &mut out[ib + ii],
                reduce(core::array::from_fn(|l| acc[l][ii])),
            );
        }
    }
}

/// The output is produced in `LANES`-wide blocks of `a`'s columns; for each
/// block the contraction walks `a` row-major (reading `LANES` consecutive
/// elements of each row), carrying the same `[k-lane][column]` register tile
/// as [`gemm_into`], so per-element bits match [`gemm_into`] on a
/// materialized transpose. Blocks are walked block-outer / column-inner so
/// one block's slab of `a` (`k * LANES` floats) stays cache-resident while
/// `b`'s columns stream past it; large strided slabs are packed contiguously
/// first, exactly as in [`gemm_into`]. The backward pass's `A^T * g` GEMV-T
/// (`n == 1`) dispatches to the dedicated [`gemv_t_into`], which never packs
/// (a single column reuses nothing, so packing is pure overhead).
pub fn gemm_tn_into(out: &mut [f32], a: &[f32], k: usize, m: usize, b: &[f32], n: usize) {
    debug_assert_eq!(a.len(), k * m, "kernel::gemm_tn: bad lhs length");
    debug_assert_eq!(b.len(), k * n, "kernel::gemm_tn: bad rhs length");
    debug_assert_eq!(out.len(), m * n, "kernel::gemm_tn: bad output length");
    if n == 1 {
        gemv_t_into(out, a, k, m, b);
        return;
    }
    let mut vals = [0.0f32; LANES];
    if k <= PACK_MAX_K && k * m >= PACK_MIN_ELEMS && m >= LANES {
        // Both operands are strided here (`a` by `m`, `b`'s broadcast
        // column walk by `n`), so both get packed: the `a` slab once per
        // row block, the `b` slab per column block inside it.
        let mut a_slab = [0.0f32; LANES * PACK_MAX_K];
        let mut b_slab = [0.0f32; LANES * PACK_MAX_K];
        let mut ib = 0;
        while ib + LANES <= m {
            for kk in 0..k {
                let src: &[f32; LANES] = a[kk * m + ib..kk * m + ib + LANES].try_into().unwrap();
                a_slab[kk * LANES..(kk + 1) * LANES].copy_from_slice(src);
            }
            let mut jb = 0;
            while jb + LANES <= n {
                for kk in 0..k {
                    let src: &[f32; LANES] =
                        b[kk * n + jb..kk * n + jb + LANES].try_into().unwrap();
                    b_slab[kk * LANES..(kk + 1) * LANES].copy_from_slice(src);
                }
                for g in 0..LANES {
                    gemm_tn_block(&mut vals, &a_slab, 0, LANES, &b_slab, LANES, g, k);
                    for (ii, &v) in vals.iter().enumerate() {
                        out[(ib + ii) * n + jb + g] = v;
                    }
                }
                jb += LANES;
            }
            for j in jb..n {
                gemm_tn_block(&mut vals, &a_slab, 0, LANES, b, n, j, k);
                for (ii, &v) in vals.iter().enumerate() {
                    out[(ib + ii) * n + j] = v;
                }
            }
            ib += LANES;
        }
    } else {
        let mut ib = 0;
        while ib + LANES <= m {
            for j in 0..n {
                gemm_tn_block(&mut vals, a, ib, m, b, n, j, k);
                for (ii, &v) in vals.iter().enumerate() {
                    out[(ib + ii) * n + j] = v;
                }
            }
            ib += LANES;
        }
    }
    gemm_tn_partial_rows(out, a, k, m, b, n);
}

/// Batched GEMV over packed per-item slabs: item `i` of `batch` computes
/// `out[i*rows .. (i+1)*rows] = a_i * x_i`, where `a_i` is the `i`-th
/// row-major `(rows, cols)` matrix in the contiguous weight slab `a` and
/// `x_i` the `i`-th `cols`-vector in the contiguous operand slab `x`.
///
/// This is the serving hot loop's entry point: one call advances a whole
/// shard of experts against their packed gate weights. Each item runs the
/// exact [`gemv_into`] dispatch (sparse / AVX2 / portable, decided per
/// item on its own operand vector), so every output element carries the
/// same bits as an unbatched call — the batch form buys the contiguous
/// slab layout and a single bounds-checked entry, not a different
/// accumulation order.
///
/// # Panics
///
/// Panics (in debug builds) on slab length mismatch.
pub fn gemv_batch_into(
    out: &mut [f32],
    a: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    batch: usize,
) {
    debug_assert_eq!(a.len(), batch * rows * cols, "kernel::gemv_batch: bad slab");
    debug_assert_eq!(x.len(), batch * cols, "kernel::gemv_batch: bad operands");
    debug_assert_eq!(out.len(), batch * rows, "kernel::gemv_batch: bad output");
    let mat = rows * cols;
    for i in 0..batch {
        gemv_into(
            &mut out[i * rows..(i + 1) * rows],
            &a[i * mat..(i + 1) * mat],
            rows,
            cols,
            &x[i * cols..(i + 1) * cols],
        );
    }
}

/// Batched GEMM over packed per-item slabs: item `i` of `batch` computes
/// `out_i = a_i * b_i` with `a_i` `(m, k)` and `b_i` `(k, n)`, all
/// row-major and packed contiguously per item.
///
/// Each item runs the exact [`gemm_into`] tile walk, so per-element bits
/// match the unbatched kernel; see [`gemv_batch_into`] for the contract
/// argument.
///
/// # Panics
///
/// Panics (in debug builds) on slab length mismatch.
pub fn gemm_batch_into(
    out: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    batch: usize,
) {
    debug_assert_eq!(a.len(), batch * m * k, "kernel::gemm_batch: bad lhs slab");
    debug_assert_eq!(b.len(), batch * k * n, "kernel::gemm_batch: bad rhs slab");
    debug_assert_eq!(out.len(), batch * m * n, "kernel::gemm_batch: bad output");
    for i in 0..batch {
        gemm_into(
            &mut out[i * m * n..(i + 1) * m * n],
            &a[i * m * k..(i + 1) * m * k],
            m,
            k,
            &b[i * k * n..(i + 1) * k * n],
            n,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation of the contract, written as literally as
    /// possible: lane `k % LANES`, ascending `k`, fixed tree reduce.
    fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for k in 0..a.len() {
            acc[k % LANES] += a[k] * b[k];
        }
        reduce(acc)
    }

    fn ramp(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_reference_on_ragged_lengths() {
        for n in [0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 65] {
            let a = ramp(n, |i| (i as f32 * 0.37 - 3.0).sin());
            let b = ramp(n, |i| (i as f32 * 0.11 + 1.0).cos());
            let want = dot_reference(&a, &b);
            assert_eq!(dot_portable(&a, &b).to_bits(), want.to_bits(), "n={n}");
            assert_eq!(dot(&a, &b).to_bits(), want.to_bits(), "n={n} dispatch");
            if let Some(v) = dot_avx2(&a, &b) {
                assert_eq!(v.to_bits(), want.to_bits(), "n={n} avx2");
            }
        }
    }

    #[test]
    fn sparse_dot_is_bit_identical_to_dense() {
        for n in [5, 16, 33, 100] {
            let a = ramp(n, |i| i as f32 * 0.25 - 4.0);
            let mut b = ramp(n, |i| (i as f32 * 0.4).sin());
            // Zero out most entries, including negative zeros.
            for (i, v) in b.iter_mut().enumerate() {
                if i % 5 != 0 {
                    *v = if i % 2 == 0 { 0.0 } else { -0.0 };
                }
            }
            assert_eq!(
                dot_sparse(&a, &b).to_bits(),
                dot_portable(&a, &b).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn gemv_sparse_dispatch_matches_dense_bits() {
        let rows = 7;
        let cols = 40;
        let a = ramp(rows * cols, |i| (i as f32 * 0.01 - 1.0).tanh());
        let mut x = ramp(cols, |i| i as f32 - 17.0);
        for (i, v) in x.iter_mut().enumerate() {
            // Blocky sparsity: chunk 0 stays mixed (live and zero terms),
            // chunks 1..5 are entirely zero -> 4/5 chunks above the 3/4
            // dispatch threshold.
            if i >= LANES || i % 3 == 1 {
                *v = 0.0;
            }
        }
        assert!(sparse_worthwhile(&x));
        let mut sparse = vec![0.0f32; rows];
        gemv_into(&mut sparse, &a, rows, cols, &x);
        let dense: Vec<f32> = a.chunks_exact(cols).map(|r| dot_portable(r, &x)).collect();
        assert_eq!(
            sparse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dense_vectors_stay_on_dense_path() {
        assert!(!sparse_worthwhile(&ramp(64, |i| i as f32 + 1.0)));
        // Short vectors never take the sparse path even when all-zero.
        assert!(!sparse_worthwhile(&[0.0; SPARSE_MIN_COLS - 1]));
        // Scattered zeros (7/8 elements zero but every chunk live) save
        // nothing at chunk granularity, so they must not dispatch either.
        let scattered = ramp(64, |i| if i % 8 == 0 { 1.0 } else { 0.0 });
        assert!(!sparse_worthwhile(&scattered));
        // Blocky zeros of the same density do.
        let blocky = ramp(64, |i| if i < LANES { 1.0 } else { 0.0 });
        assert!(sparse_worthwhile(&blocky));
    }

    #[test]
    fn gemm_matches_per_element_dot() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 9, 11), (8, 16, 8), (5, 20, 13)] {
            let a = ramp(m * k, |i| (i as f32 * 0.3).sin() * 2.0);
            let b = ramp(k * n, |i| (i as f32 * 0.7).cos() - 0.2);
            let mut out = vec![0.0f32; m * n];
            gemm_into(&mut out, &a, m, k, &b, n);
            for i in 0..m {
                for j in 0..n {
                    let col: Vec<f32> = (0..k).map(|kk| b[kk * n + j]).collect();
                    let want = dot_reference(&a[i * k..(i + 1) * k], &col);
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemv_t_matches_per_element_dot() {
        // Includes shapes that would (k*m >= PACK_MIN_ELEMS) and would not
        // have taken the packed gemm_tn path before the dedicated GEMV-T.
        for (k, m) in [(1, 1), (5, 3), (8, 16), (20, 13), (128, 128), (64, 70)] {
            let a = ramp(k * m, |i| (i as f32 * 0.23).sin() - 0.1);
            let x = ramp(k, |i| (i as f32 * 0.17).cos() + 0.3);
            let mut out = vec![0.0f32; m];
            gemv_t_into(&mut out, &a, k, m, &x);
            for i in 0..m {
                let col: Vec<f32> = (0..k).map(|kk| a[kk * m + i]).collect();
                let want = dot_reference(&col, &x);
                assert_eq!(out[i].to_bits(), want.to_bits(), "({k},{m}) at {i}");
            }
            // The gemm_tn entry point must dispatch to the same bits.
            let mut via_tn = vec![0.0f32; m];
            gemm_tn_into(&mut via_tn, &a, k, m, &x, 1);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                via_tn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn gemv_batch_matches_unbatched_calls_bitwise() {
        // Mix of dense and blockily-zero operand vectors so different items
        // dispatch to different paths inside one batch.
        let (rows, cols, batch) = (9, 40, 5);
        let a = ramp(batch * rows * cols, |i| (i as f32 * 0.03).sin());
        let mut x = ramp(batch * cols, |i| (i as f32 * 0.19).cos());
        for (i, v) in x.iter_mut().enumerate() {
            // Items 1 and 3 get blocky sparsity past their first chunk.
            let item = i / cols;
            if (item == 1 || item == 3) && i % cols >= LANES {
                *v = 0.0;
            }
        }
        let mut batched = vec![0.0f32; batch * rows];
        gemv_batch_into(&mut batched, &a, rows, cols, &x, batch);
        for i in 0..batch {
            let mut single = vec![0.0f32; rows];
            gemv_into(
                &mut single,
                &a[i * rows * cols..(i + 1) * rows * cols],
                rows,
                cols,
                &x[i * cols..(i + 1) * cols],
            );
            assert_eq!(
                batched[i * rows..(i + 1) * rows]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "item {i}"
            );
        }
    }

    #[test]
    fn gemm_batch_matches_unbatched_calls_bitwise() {
        let (m, k, n, batch) = (4, 7, 5, 3);
        let a = ramp(batch * m * k, |i| (i as f32 * 0.11).sin() * 1.5);
        let b = ramp(batch * k * n, |i| (i as f32 * 0.07).cos() - 0.4);
        let mut batched = vec![0.0f32; batch * m * n];
        gemm_batch_into(&mut batched, &a, m, k, &b, n, batch);
        for i in 0..batch {
            let mut single = vec![0.0f32; m * n];
            gemm_into(
                &mut single,
                &a[i * m * k..(i + 1) * m * k],
                m,
                k,
                &b[i * k * n..(i + 1) * k * n],
                n,
            );
            assert_eq!(
                batched[i * m * n..(i + 1) * m * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "item {i}"
            );
        }
    }

    #[test]
    fn gemm_nt_matches_per_element_dot() {
        // Includes `n == 1` shapes, which dispatch to the dedicated GEMV
        // path, and `k == 1` outer products (the backward's weight grads).
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (9, 7, 11),
            (16, 8, 1),
            (13, 20, 1),
            (5, 1, 7),
        ] {
            let a = ramp(m * k, |i| (i as f32 * 0.29).sin() + 0.2);
            let b = ramp(n * k, |i| (i as f32 * 0.17).cos() - 0.3);
            let mut out = vec![0.0f32; m * n];
            gemm_nt_into(&mut out, &a, m, k, &b, n);
            for i in 0..m {
                for j in 0..n {
                    let want = dot_reference(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemv_t_acc_matches_set_then_add_bitwise() {
        for (k, m) in [(1, 1), (5, 3), (8, 16), (20, 13), (64, 70)] {
            let a = ramp(k * m, |i| (i as f32 * 0.23).sin() - 0.1);
            let x = ramp(k, |i| (i as f32 * 0.17).cos() + 0.3);
            let mut set = vec![0.0f32; m];
            gemv_t_into(&mut set, &a, k, m, &x);
            let mut acc = ramp(m, |i| (i as f32 * 0.31).sin() * 0.7);
            let want: Vec<u32> = acc
                .iter()
                .zip(set.iter())
                .map(|(&p, &v)| (p + v).to_bits())
                .collect();
            gemv_t_acc_into(&mut acc, &a, k, m, &x);
            assert_eq!(
                acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want,
                "({k},{m})"
            );
        }
    }

    #[test]
    fn gemm_nt_acc_matches_set_then_add_bitwise() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (9, 7, 11), (16, 8, 1), (3, 1, 4)] {
            let a = ramp(m * k, |i| (i as f32 * 0.29).sin() + 0.2);
            let b = ramp(n * k, |i| (i as f32 * 0.17).cos() - 0.3);
            let mut set = vec![0.0f32; m * n];
            gemm_nt_into(&mut set, &a, m, k, &b, n);
            let mut acc = ramp(m * n, |i| (i as f32 * 0.41).cos() * 0.5);
            let want: Vec<u32> = acc
                .iter()
                .zip(set.iter())
                .map(|(&p, &v)| (p + v).to_bits())
                .collect();
            gemm_nt_acc_into(&mut acc, &a, m, k, &b, n);
            assert_eq!(
                acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want,
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn gemm_tn_matches_per_element_dot() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (9, 7, 11), (16, 8, 1), (13, 20, 1)] {
            let a = ramp(k * m, |i| (i as f32 * 0.21).sin() + 0.4);
            let b = ramp(k * n, |i| (i as f32 * 0.13).cos() * 1.5);
            let mut out = vec![0.0f32; m * n];
            gemm_tn_into(&mut out, &a, k, m, &b, n);
            for i in 0..m {
                for j in 0..n {
                    let lhs: Vec<f32> = (0..k).map(|kk| a[kk * m + i]).collect();
                    let rhs: Vec<f32> = (0..k).map(|kk| b[kk * n + j]).collect();
                    let want = dot_reference(&lhs, &rhs);
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }
}
