//! Dense tensors and reverse-mode automatic differentiation for DeepRest.
//!
//! The DeepRest estimator (mask + GRU + cross-component attention + quantile
//! heads, Eqs. 1-6 of the paper) is trained with gradient descent. The Rust
//! deep-learning ecosystem is thin, so this crate provides the minimal
//! substrate the paper's PyTorch implementation relied on:
//!
//! * [`Tensor`] — a rank-2 dense `f32` tensor (column vectors are `(n, 1)`),
//!   with the usual construction, elementwise and linear-algebra helpers.
//! * [`Graph`] — a tape-based reverse-mode autodiff arena. Operations record
//!   nodes; [`Graph::backward`] accumulates gradients into a [`ParamStore`],
//!   which owns trainable parameters across many unrolled graphs (truncated
//!   back-propagation through time builds one `Graph` per subsequence).
//! * [`linalg`] — small dense linear-algebra utilities (Jacobi eigensolver,
//!   Gram-trick PCA) used to reproduce the paper's Fig. 21 expert-parameter
//!   analysis.
//!
//! # Examples
//!
//! ```
//! use deeprest_tensor::{Graph, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(1, 2, vec![0.5, -1.0]));
//!
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::vector(vec![2.0, 3.0]));
//! let wv = g.param(&store, w);
//! let y = g.matmul(wv, x); // (1,1) scalar: 0.5*2 - 1*3 = -2
//! let loss = g.sum_all(y);
//! g.backward(loss, &mut store);
//!
//! assert_eq!(g.value(y).data(), &[-2.0]);
//! assert_eq!(store.grad(w).data(), &[2.0, 3.0]); // dL/dw = x^T
//! ```

// `deny` rather than `forbid`: the runtime-detected AVX2 path in `kernel`
// carries the crate's only `#[allow(unsafe_code)]`, scoped to that module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod kernel;
pub mod linalg;
mod param;
pub mod pool;
pub mod scratch;
mod tensor;

pub use graph::{Graph, Var};
pub use param::{GradBuffer, ParamId, ParamStore};
pub use pool::Pool;
pub use scratch::BufferPool;
pub use tensor::Tensor;
