//! Tape-based reverse-mode automatic differentiation.

use deeprest_telemetry as telemetry;

use crate::{scratch::BufferPool, GradBuffer, ParamId, ParamStore, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// The recorded operation that produced a node. Deliberately not `Clone`:
/// the backward sweep matches ops by reference, and nothing else may copy
/// them.
#[derive(Debug)]
enum Op {
    /// Leaf without gradient (inputs, targets, masks of constants).
    Constant,
    /// Leaf whose gradient flows back into a [`ParamStore`].
    Param(ParamId),
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Hadamard product `a ⊙ b`.
    Mul(Var, Var),
    /// Matrix product `a * b`.
    MatMul(Var, Var),
    /// Logistic sigmoid `σ(a)`.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// `1 - a` elementwise.
    OneMinus(Var),
    /// `c * a` for a compile-time scalar `c`.
    Scale(Var, f32),
    /// `a ⊙ c` for a constant tensor `c` (e.g. self-exclusion masks).
    MulConst(Var, Tensor),
    /// `a - c` for a constant tensor `c` (e.g. regression targets); only
    /// the operand var is needed for the backward pass.
    SubConst(Var),
    /// Copy of `a` with one row-major element forced to `+0.0` — the
    /// attention self-exclusion mask without materializing a ones tensor.
    MaskOut(Var, usize),
    /// Elementwise square `a ⊙ a`.
    Square(Var),
    /// Vertical stack of column vectors.
    ConcatRows(Vec<Var>),
    /// Horizontal stack of column vectors into a matrix.
    ConcatCols(Vec<Var>),
    /// Sum of all elements, producing a `(1, 1)` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `(1, 1)` scalar.
    MeanAll(Var),
    /// Elementwise sum of same-shaped vars.
    AddN(Vec<Var>),
    /// Fused gate pre-activation + sigmoid: `σ(a + b + c)`.
    GateSigmoid(Var, Var, Var),
    /// Fused gate pre-activation + tanh: `tanh(a + b + c)`.
    GateTanh(Var, Var, Var),
    /// Fused convex mix `z ⊙ a + (1 - z) ⊙ b` (the GRU output gate).
    Lerp {
        /// Mixing gate in `(0, 1)`.
        z: Var,
        /// Branch weighted by `z`.
        a: Var,
        /// Branch weighted by `1 - z`.
        b: Var,
    },
    /// Pinball (quantile) loss summed over rows; see [`Graph::pinball`].
    Pinball {
        pred: Var,
        target: Tensor,
        quantiles: Vec<f32>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A computation tape.
///
/// Operations append nodes in topological order; [`Graph::backward`] sweeps
/// the tape in reverse, accumulating parameter gradients into the
/// [`ParamStore`] the parameters were read from.
///
/// A graph is intended to be long-lived: build one per forward/backward pass
/// (per truncated-BPTT subsequence during training), [`Graph::reset`] it and
/// build the next. Node values, backward-pass gradients, and op payloads are
/// drawn from an internal [`BufferPool`] and recycled on reset, so a reused
/// graph running a fixed shape sequence performs **zero** heap allocations
/// after its first couple of passes (the `kernel.alloc` telemetry counter
/// makes this observable, and `crates/core/tests/zero_alloc.rs` asserts it).
pub struct Graph {
    nodes: Vec<Node>,
    /// Recycled `f32` buffers backing node values, gradients, and constant
    /// op payloads.
    scratch: BufferPool,
    /// Backward-pass gradient slots, one per node; kept as a field so the
    /// allocation survives across [`Graph::backward`] calls.
    grad_slots: Vec<Option<Tensor>>,
    /// Recycled operand lists for `ConcatRows`/`ConcatCols`/`AddN` payloads.
    var_pool: Vec<Vec<Var>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            scratch: BufferPool::new(),
            grad_slots: Vec::new(),
            var_pool: Vec::new(),
        }
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            scratch: BufferPool::new(),
            grad_slots: Vec::new(),
            var_pool: Vec::new(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        if self.nodes.len() == self.nodes.capacity() && telemetry::enabled() {
            // This push is about to reallocate the arena — in steady state
            // (warm reuse via `reset`) the counter stays flat.
            telemetry::counter("graph.arena_grow", 1);
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Takes a zeroed pooled tensor shaped like node `v`.
    fn take_like(&mut self, v: Var) -> Tensor {
        let (rows, cols) = self.nodes[v.0].value.shape();
        self.scratch.take_tensor(rows, cols)
    }

    /// Takes a pooled copy of node `v`'s value.
    fn take_copy_of(&mut self, v: Var) -> Tensor {
        let mut out = self.take_like(v);
        out.copy_from(&self.nodes[v.0].value);
        out
    }

    /// Takes a recycled operand list holding a copy of `parts`.
    fn take_vars(&mut self, parts: &[Var]) -> Vec<Var> {
        let mut vars = self.var_pool.pop().unwrap_or_default();
        vars.clear();
        vars.extend_from_slice(parts);
        vars
    }

    /// Records a gradient-less leaf (model input, target, fixed mask),
    /// taking ownership of `t`. Prefer [`Graph::constant_copy`] in hot loops
    /// — an owned tensor was necessarily allocated by the caller.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Constant)
    }

    /// Records a gradient-less leaf by copying `t` into pooled scratch —
    /// the zero-allocation (steady-state) form of [`Graph::constant`].
    pub fn constant_copy(&mut self, t: &Tensor) -> Var {
        let c = self.scratch.take_copy(t);
        self.push(c, Op::Constant)
    }

    /// Records an all-zero gradient-less leaf from pooled scratch (initial
    /// hidden states, disabled-attention placeholders).
    pub fn constant_zeros(&mut self, rows: usize, cols: usize) -> Var {
        let c = self.scratch.take_tensor(rows, cols);
        self.push(c, Op::Constant)
    }

    /// Records a gradient-less leaf filled with `value` from pooled scratch.
    pub fn constant_fill(&mut self, rows: usize, cols: usize, value: f32) -> Var {
        let mut c = self.scratch.take_tensor(rows, cols);
        c.data_mut().fill(value);
        self.push(c, Op::Constant)
    }

    /// Records a trainable parameter leaf by copying its current value from
    /// `store` into pooled scratch. Gradients accumulate back into `store`
    /// on [`Graph::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.scratch.take_copy(store.value(id));
        self.push(v, Op::Param(id))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a)
            .zip_map_into(self.value(b), &mut out, |x, y| x + y);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a)
            .zip_map_into(self.value(b), &mut out, |x, y| x - y);
        self.push(out, Op::Sub(a, b))
    }

    /// Hadamard product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a)
            .zip_map_into(self.value(b), &mut out, |x, y| x * y);
        self.push(out, Op::Mul(a, b))
    }

    /// Matrix product, on the lane-blocked kernels of [`crate::kernel`]
    /// (GEMV dispatch for vector right operands included).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = (self.value(a).rows(), self.value(b).cols());
        let mut out = self.scratch.take_tensor(rows, cols);
        self.value(a).matmul_into(self.value(b), &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a)
            .map_into(&mut out, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(out, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a).map_into(&mut out, f32::tanh);
        self.push(out, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a).map_into(&mut out, |x| x.max(0.0));
        self.push(out, Op::Relu(a))
    }

    /// `1 - a` elementwise (used for the GRU update gate mix).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a).map_into(&mut out, |x| 1.0 - x);
        self.push(out, Op::OneMinus(a))
    }

    /// Scalar scaling `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let mut out = self.take_like(a);
        self.value(a).map_into(&mut out, |x| x * c);
        self.push(out, Op::Scale(a, c))
    }

    /// Elementwise product with a constant tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_const(&mut self, a: Var, c: Tensor) -> Var {
        let mut out = self.take_like(a);
        self.value(a).zip_map_into(&c, &mut out, |x, y| x * y);
        self.push(out, Op::MulConst(a, c))
    }

    /// Copy of `a` with the row-major element at `index` forced to `+0.0` —
    /// the cross-component attention self-exclusion mask (Eq. 4's
    /// `α_{i,i} = 0`) without materializing a ones-with-a-hole mask tensor.
    /// The gradient copies through everywhere except `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for `a`.
    pub fn mask_out(&mut self, a: Var, index: usize) -> Var {
        assert!(
            index < self.value(a).len(),
            "Graph::mask_out: index {index} out of bounds for {} elements",
            self.value(a).len()
        );
        let mut out = self.take_copy_of(a);
        out.data_mut()[index] = 0.0;
        self.push(out, Op::MaskOut(a, index))
    }

    /// Elementwise difference with a constant tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_const(&mut self, a: Var, c: Tensor) -> Var {
        let mut out = self.take_like(a);
        self.value(a).zip_map_into(&c, &mut out, |x, y| x - y);
        // Only the operand var is needed for the backward pass; recycle the
        // constant's buffer immediately.
        self.scratch.put_tensor(c);
        self.push(out, Op::SubConst(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        self.value(a).map_into(&mut out, |x| x * x);
        self.push(out, Op::Square(a))
    }

    /// Vertically stacks column vectors (the paper's `a || h` concatenation).
    ///
    /// # Panics
    ///
    /// Panics if any input is not a column vector.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let mut total = 0;
        for &p in parts {
            assert_eq!(
                self.value(p).cols(),
                1,
                "Graph::concat_rows: inputs must be column vectors"
            );
            total += self.value(p).rows();
        }
        let mut out = self.scratch.take_tensor(total, 1);
        let mut offset = 0;
        for &p in parts {
            let d = self.value(p).data();
            out.data_mut()[offset..offset + d.len()].copy_from_slice(d);
            offset += d.len();
        }
        let vars = self.take_vars(parts);
        self.push(out, Op::ConcatRows(vars))
    }

    /// Stacks column vectors side by side into a matrix, enabling the
    /// cross-component attention `H_t · α` as one mat-vec.
    ///
    /// # Panics
    ///
    /// Panics if inputs are not identically sized column vectors.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "Graph::concat_cols: no inputs");
        let rows = self.value(parts[0]).rows();
        let cols = parts.len();
        let mut out = self.scratch.take_tensor(rows, cols);
        for (c, &p) in parts.iter().enumerate() {
            assert_eq!(
                self.value(p).shape(),
                (rows, 1),
                "Graph::concat_cols: inputs must be ({rows}, 1) column vectors"
            );
            let src = self.value(p).data();
            for (r, &v) in src.iter().enumerate() {
                out.data_mut()[r * cols + c] = v;
            }
        }
        let vars = self.take_vars(parts);
        self.push(out, Op::ConcatCols(vars))
    }

    /// Sum of all elements, yielding a scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let mut out = self.scratch.take_tensor(1, 1);
        out.data_mut()[0] = self.value(a).sum();
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all elements, yielding a scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let mut out = self.scratch.take_tensor(1, 1);
        out.data_mut()[0] = self.value(a).mean();
        self.push(out, Op::MeanAll(a))
    }

    /// Elementwise sum of several same-shaped vars in one node.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn add_n(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "Graph::add_n: no inputs");
        let mut out = self.take_copy_of(parts[0]);
        for &p in &parts[1..] {
            out.add_assign(self.value(p));
        }
        let vars = self.take_vars(parts);
        self.push(out, Op::AddN(vars))
    }

    /// Fused `σ(a + b + c)` in a single node — the GRU gate pre-activation
    /// plus activation (Eq. 2) without the two intermediate `Add` nodes.
    /// Values and gradients are bit-for-bit identical to the unfused
    /// `sigmoid(add(add(a, b), c))` chain: the per-element sum associates
    /// left, and the shared upstream term `g ⊙ y ⊙ (1 - y)` is what every
    /// operand of the chain receives.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn gate_sigmoid(&mut self, a: Var, b: Var, c: Var) -> Var {
        let mut out = self.take_like(a);
        self.fused_gate_into(a, b, c, &mut out, |s| 1.0 / (1.0 + (-s).exp()));
        self.push(out, Op::GateSigmoid(a, b, c))
    }

    /// Fused `tanh(a + b + c)` in a single node; see [`Graph::gate_sigmoid`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn gate_tanh(&mut self, a: Var, b: Var, c: Var) -> Var {
        let mut out = self.take_like(a);
        self.fused_gate_into(a, b, c, &mut out, f32::tanh);
        self.push(out, Op::GateTanh(a, b, c))
    }

    fn fused_gate_into(&self, a: Var, b: Var, c: Var, out: &mut Tensor, act: impl Fn(f32) -> f32) {
        let (ta, tb, tc) = (self.value(a), self.value(b), self.value(c));
        assert_eq!(
            ta.shape(),
            tb.shape(),
            "Graph::fused gate: shape mismatch between summands"
        );
        assert_eq!(
            ta.shape(),
            tc.shape(),
            "Graph::fused gate: shape mismatch between summands"
        );
        out.reshape_to(ta.rows(), ta.cols());
        for (o, ((&x, &y), &z)) in out
            .data_mut()
            .iter_mut()
            .zip(ta.data().iter().zip(tb.data().iter()).zip(tc.data().iter()))
        {
            *o = act((x + y) + z);
        }
    }

    /// Fused convex mix `z ⊙ a + (1 - z) ⊙ b` — the GRU output gate
    /// (Eq. 2's `h_t = z_t ⊙ h_{t-1} + (1 - z_t) ⊙ h̃_t`) in one node
    /// instead of four (`mul`, `one_minus`, `mul`, `add`). Per-element
    /// arithmetic and the backward formulas reproduce the unfused chain's
    /// operation order exactly, so results are bit-for-bit identical.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn lerp(&mut self, z: Var, a: Var, b: Var) -> Var {
        let mut out = self.take_like(z);
        {
            let (tz, ta, tb) = (self.value(z), self.value(a), self.value(b));
            assert_eq!(tz.shape(), ta.shape(), "Graph::lerp: shape mismatch");
            assert_eq!(tz.shape(), tb.shape(), "Graph::lerp: shape mismatch");
            for (o, ((&zi, &ai), &bi)) in out
                .data_mut()
                .iter_mut()
                .zip(tz.data().iter().zip(ta.data().iter()).zip(tb.data().iter()))
            {
                *o = (zi * ai) + ((1.0 - zi) * bi);
            }
        }
        self.push(out, Op::Lerp { z, a, b })
    }

    /// Pinball (quantile) loss summed over rows, in the standard orientation
    /// whose minimizer at quantile `q` is the `q`-th quantile of the targets.
    ///
    /// For each row `i`, with `u_i = target_i - pred_i` and quantile `q_i`:
    /// `Q(u|q) = q·u` when `u ≥ 0`, else `(q-1)·u`.
    ///
    /// Note: the paper's Eq. 5 writes the loss in terms of `Δ = ŷ - y` with
    /// the quantile factor on the `Δ ≥ 0` branch, which, taken literally,
    /// makes the head trained at `δ + (1-δ)/2` estimate the *lower* tail.
    /// We use the standard orientation so the Eq. 6 quantiles
    /// `{0.5, (1-δ)/2, δ+(1-δ)/2}` produce the intended
    /// (median, lower, upper) interval.
    ///
    /// # Panics
    ///
    /// Panics if `pred`, `target` and `quantiles` disagree on length, or if
    /// `pred` is not a column vector.
    pub fn pinball(&mut self, pred: Var, target: Tensor, quantiles: &[f32]) -> Var {
        let mut qs = self.scratch.take(quantiles.len());
        qs.copy_from_slice(quantiles);
        self.pinball_owned(pred, target, qs)
    }

    /// [`Graph::pinball`] against a uniform target: every row of `pred` is
    /// scored against the same scalar `y`. The estimator's Eq. 6 loss scores
    /// the three quantile heads against one ground-truth value per step;
    /// this form builds the target column from pooled scratch instead of a
    /// caller-allocated tensor.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not a column vector matching `quantiles` in
    /// length.
    pub fn pinball_fill(&mut self, pred: Var, y: f32, quantiles: &[f32]) -> Var {
        let rows = self.value(pred).rows();
        let mut target = self.scratch.take_tensor(rows, 1);
        target.data_mut().fill(y);
        let mut qs = self.scratch.take(quantiles.len());
        qs.copy_from_slice(quantiles);
        self.pinball_owned(pred, target, qs)
    }

    fn pinball_owned(&mut self, pred: Var, target: Tensor, quantiles: Vec<f32>) -> Var {
        let p = self.value(pred);
        assert_eq!(p.cols(), 1, "Graph::pinball: pred must be a column vector");
        assert_eq!(
            p.rows(),
            target.rows(),
            "Graph::pinball: pred and target length mismatch"
        );
        assert_eq!(
            p.rows(),
            quantiles.len(),
            "Graph::pinball: pred and quantile count mismatch"
        );
        let mut loss = 0.0;
        for ((&pi, &ti), &q) in p
            .data()
            .iter()
            .zip(target.data().iter())
            .zip(quantiles.iter())
        {
            let u = ti - pi;
            loss += if u >= 0.0 { q * u } else { (q - 1.0) * u };
        }
        let mut value = self.scratch.take_tensor(1, 1);
        value.data_mut()[0] = loss;
        self.push(
            value,
            Op::Pinball {
                pred,
                target,
                quantiles,
            },
        )
    }

    /// Clears the tape, keeping the node arena's allocation and recycling
    /// every node's value buffer (plus constant op payloads and operand
    /// lists) into the internal [`BufferPool`] for reuse by the next forward
    /// pass. Training builds one graph per truncated-BPTT subsequence; after
    /// a couple of warm-up passes over a fixed shape sequence, resetting and
    /// rebuilding performs zero heap allocations.
    pub fn reset(&mut self) {
        if self.nodes.capacity() > 0 && telemetry::enabled() {
            telemetry::counter("graph.arena_reuse", 1);
        }
        let Self {
            nodes,
            scratch,
            var_pool,
            ..
        } = self;
        for node in nodes.drain(..) {
            scratch.put_tensor(node.value);
            match node.op {
                Op::MulConst(_, c) => scratch.put_tensor(c),
                Op::Pinball {
                    target, quantiles, ..
                } => {
                    scratch.put_tensor(target);
                    scratch.put(quantiles);
                }
                Op::ConcatRows(v) | Op::ConcatCols(v) | Op::AddN(v) => var_pool.push(v),
                _ => {}
            }
        }
    }

    /// Runs the reverse sweep from scalar node `loss`, accumulating parameter
    /// gradients into `store` (gradients are *added*; call
    /// [`ParamStore::zero_grads`] between optimizer steps).
    ///
    /// Records nothing on the tape; `&mut self` only so gradient temporaries
    /// can be drawn from (and returned to) the graph's scratch pool —
    /// steady-state backward passes are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `(1, 1)` tensor.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_with(loss, &mut |id, g| store.grad_mut(id).add_assign(g));
    }

    /// Like [`Graph::backward`], but accumulates into a detached
    /// [`GradBuffer`] instead of the store — the building block of parallel
    /// training, where each subsequence owns a private buffer and buffers
    /// are reduced in subsequence order afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `(1, 1)` tensor.
    pub fn backward_into(&mut self, loss: Var, buf: &mut GradBuffer) {
        self.backward_with(loss, &mut |id, g| buf.add(id, g));
    }

    /// The reverse sweep, parameterized over the gradient sink. Matches ops
    /// by reference — no per-node `Op` clone; every gradient temporary comes
    /// from the scratch pool and goes back once consumed.
    fn backward_with(&mut self, loss: Var, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "Graph::backward: loss must be scalar"
        );
        if telemetry::enabled() {
            telemetry::counter("graph.backward.runs", 1);
            telemetry::gauge("graph.backward.tape_nodes", self.nodes.len() as f64);
        }
        let Self {
            nodes,
            scratch,
            grad_slots: slots,
            ..
        } = self;
        slots.clear();
        slots.resize_with(nodes.len(), || None);
        let mut seed = scratch.take_tensor(1, 1);
        seed.data_mut()[0] = 1.0;
        slots[loss.0] = Some(seed);

        // Local shorthand: `val!(v)` is node v's forward value.
        macro_rules! val {
            ($v:expr) => {
                &nodes[$v.0].value
            };
        }

        for idx in (0..=loss.0).rev() {
            let Some(g) = slots[idx].take() else { continue };
            match &nodes[idx].op {
                Op::Constant => {}
                Op::Param(id) => sink(*id, &g),
                Op::Add(a, b) => {
                    acc_ref(scratch, slots, *a, &g);
                    acc_ref(scratch, slots, *b, &g);
                }
                Op::Sub(a, b) => {
                    acc_ref(scratch, slots, *a, &g);
                    acc_scaled(scratch, slots, *b, &g, -1.0);
                }
                Op::Mul(a, b) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(b), &mut ga, |gi, bi| gi * bi);
                    let mut gb = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(a), &mut gb, |gi, ai| gi * ai);
                    acc_owned(scratch, slots, *a, ga);
                    acc_owned(scratch, slots, *b, gb);
                }
                Op::MatMul(a, b) => {
                    // Transposed-operand kernels: bit-identical to
                    // materializing the transpose, without the copy.
                    let mut ga = scratch.take_tensor(g.rows(), val!(b).rows());
                    g.matmul_nt_into(val!(b), &mut ga);
                    let mut gb = scratch.take_tensor(val!(a).cols(), g.cols());
                    val!(a).matmul_tn_into(&g, &mut gb);
                    acc_owned(scratch, slots, *a, ga);
                    acc_owned(scratch, slots, *b, gb);
                }
                Op::Sigmoid(a) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(&nodes[idx].value, &mut ga, |gi, yi| gi * yi * (1.0 - yi));
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(&nodes[idx].value, &mut ga, |gi, yi| gi * (1.0 - yi * yi));
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::Relu(a) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(a), &mut ga, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::OneMinus(a) => acc_scaled(scratch, slots, *a, &g, -1.0),
                Op::Scale(a, c) => acc_scaled(scratch, slots, *a, &g, *c),
                Op::MulConst(a, c) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(c, &mut ga, |gi, ci| gi * ci);
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::MaskOut(a, index) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    ga.copy_from(&g);
                    ga.data_mut()[*index] = 0.0;
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::SubConst(a) => acc_ref(scratch, slots, *a, &g),
                Op::Square(a) => {
                    let mut ga = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(a), &mut ga, |gi, xi| 2.0 * gi * xi);
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let rows = nodes[p.0].value.rows();
                        let mut slice = scratch.take_tensor(rows, 1);
                        slice
                            .data_mut()
                            .copy_from_slice(&g.data()[offset..offset + rows]);
                        acc_owned(scratch, slots, p, slice);
                        offset += rows;
                    }
                }
                Op::ConcatCols(parts) => {
                    let rows = nodes[idx].value.rows();
                    let cols = parts.len();
                    for (c, &p) in parts.iter().enumerate() {
                        let mut col = scratch.take_tensor(rows, 1);
                        for r in 0..rows {
                            col.data_mut()[r] = g.data()[r * cols + c];
                        }
                        acc_owned(scratch, slots, p, col);
                    }
                }
                Op::SumAll(a) => {
                    let (rows, cols) = val!(a).shape();
                    let mut ga = scratch.take_tensor(rows, cols);
                    ga.data_mut().fill(g.data()[0]);
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::MeanAll(a) => {
                    let (rows, cols) = val!(a).shape();
                    let n = (rows * cols) as f32;
                    let mut ga = scratch.take_tensor(rows, cols);
                    ga.data_mut().fill(g.data()[0] / n);
                    acc_owned(scratch, slots, *a, ga);
                }
                Op::AddN(parts) => {
                    for &p in parts {
                        acc_ref(scratch, slots, p, &g);
                    }
                }
                Op::GateSigmoid(a, b, c) => {
                    // Every summand of the fused pre-activation receives the
                    // same σ' upstream term, exactly as the unfused chain.
                    let mut d = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(&nodes[idx].value, &mut d, |gi, yi| gi * yi * (1.0 - yi));
                    acc_ref(scratch, slots, *a, &d);
                    acc_ref(scratch, slots, *b, &d);
                    acc_ref(scratch, slots, *c, &d);
                    scratch.put_tensor(d);
                }
                Op::GateTanh(a, b, c) => {
                    let mut d = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(&nodes[idx].value, &mut d, |gi, yi| gi * (1.0 - yi * yi));
                    acc_ref(scratch, slots, *a, &d);
                    acc_ref(scratch, slots, *b, &d);
                    acc_ref(scratch, slots, *c, &d);
                    scratch.put_tensor(d);
                }
                Op::Lerp { z, a, b } => {
                    // dz = g ⊙ a - g ⊙ b, built from the two products the
                    // unfused chain computes (sign flip is exact; addition
                    // commutes bitwise), so fused == unfused to the bit.
                    let mut dz = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(b), &mut dz, |gi, bi| gi * bi);
                    dz.scale_assign(-1.0);
                    let mut tmp = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(a), &mut tmp, |gi, ai| gi * ai);
                    dz.add_assign(&tmp);
                    // Reuse the temporary for da = g ⊙ z.
                    g.zip_map_into(val!(z), &mut tmp, |gi, zi| gi * zi);
                    let mut db = scratch.take_tensor(g.rows(), g.cols());
                    g.zip_map_into(val!(z), &mut db, |gi, zi| gi * (1.0 - zi));
                    acc_owned(scratch, slots, *z, dz);
                    acc_owned(scratch, slots, *a, tmp);
                    acc_owned(scratch, slots, *b, db);
                }
                Op::Pinball {
                    pred,
                    target,
                    quantiles,
                } => {
                    let rows = val!(pred).rows();
                    let mut gp = scratch.take_tensor(rows, 1);
                    for (i, ((&pi, &ti), &q)) in val!(pred)
                        .data()
                        .iter()
                        .zip(target.data().iter())
                        .zip(quantiles.iter())
                        .enumerate()
                    {
                        let u = ti - pi;
                        // dL/dpred = -q when under the target, (1-q) above it;
                        // the subgradient at u = 0 uses the u ≥ 0 branch.
                        let d = if u >= 0.0 { -q } else { 1.0 - q };
                        gp.data_mut()[i] = g.data()[0] * d;
                    }
                    acc_owned(scratch, slots, *pred, gp);
                }
            }
            scratch.put_tensor(g);
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

/// Adds `g` into the slot for `v`, drawing a pooled copy when the slot is
/// empty.
fn acc_ref(scratch: &mut BufferPool, slots: &mut [Option<Tensor>], v: Var, g: &Tensor) {
    match &mut slots[v.0] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(scratch.take_copy(g)),
    }
}

/// Adds an owned (pooled) gradient into the slot for `v`; the tensor either
/// becomes the slot or is recycled after being added.
fn acc_owned(scratch: &mut BufferPool, slots: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut slots[v.0] {
        Some(existing) => {
            existing.add_assign(&g);
            scratch.put_tensor(g);
        }
        slot @ None => *slot = Some(g),
    }
}

/// Adds `scale * g` into the slot for `v`.
fn acc_scaled(
    scratch: &mut BufferPool,
    slots: &mut [Option<Tensor>],
    v: Var,
    g: &Tensor,
    scale: f32,
) {
    match &mut slots[v.0] {
        Some(existing) => existing.axpy(scale, g),
        slot @ None => {
            let mut t = scratch.take_tensor(g.rows(), g.cols());
            g.map_into(&mut t, |x| x * scale);
            *slot = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[(&str, Tensor)]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = values.iter().map(|(n, t)| s.add(*n, t.clone())).collect();
        (s, ids)
    }

    /// Central finite-difference gradient of `f` w.r.t. parameter `id`.
    /// Perturbs one scratch store in place — no per-element store clones.
    fn numeric_grad(store: &ParamStore, id: ParamId, f: impl Fn(&ParamStore) -> f32) -> Tensor {
        let eps = 1e-3;
        let mut probe = store.clone();
        let shape = store.value(id).shape();
        let mut out = Tensor::zeros(shape.0, shape.1);
        for i in 0..store.value(id).len() {
            let orig = probe.value(id).data()[i];
            probe.value_mut(id).data_mut()[i] = orig + eps;
            let plus = f(&probe);
            probe.value_mut(id).data_mut()[i] = orig - eps;
            let minus = f(&probe);
            probe.value_mut(id).data_mut()[i] = orig;
            out.data_mut()[i] = (plus - minus) / (2.0 * eps);
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "gradient mismatch: analytic {x} vs numeric {y}"
            );
        }
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let (mut store, ids) = store_with(&[
            (
                "w",
                Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.7, -0.4]),
            ),
            ("x", Tensor::vector(vec![1.0, -1.5, 2.0])),
        ]);
        let f = |s: &ParamStore| {
            let mut g = Graph::new();
            let w = g.param(s, ids[0]);
            let x = g.param(s, ids[1]);
            let y = g.matmul(w, x);
            let l = g.sum_all(y);
            g.value(l).data()[0]
        };
        let mut g = Graph::new();
        let w = g.param(&store, ids[0]);
        let x = g.param(&store, ids[1]);
        let y = g.matmul(w, x);
        let l = g.sum_all(y);
        g.backward(l, &mut store);

        assert_close(store.grad(ids[0]), &numeric_grad(&store, ids[0], f), 1e-2);
        assert_close(store.grad(ids[1]), &numeric_grad(&store, ids[1], f), 1e-2);
    }

    #[test]
    fn gru_like_composite_gradients() {
        // z = σ(Wx); h = z ⊙ tanh(Ux); loss = mean(h²) exercises most ops.
        let (mut store, ids) = store_with(&[
            ("w", Tensor::from_vec(2, 2, vec![0.3, -0.1, 0.4, 0.2])),
            ("u", Tensor::from_vec(2, 2, vec![-0.2, 0.6, 0.1, -0.5])),
        ]);
        let x = Tensor::vector(vec![0.8, -0.6]);
        let (w_id, u_id) = (ids[0], ids[1]);
        let f = {
            let x = x.clone();
            move |s: &ParamStore| {
                let mut g = Graph::new();
                let w = g.param(s, w_id);
                let u = g.param(s, u_id);
                let xv = g.constant(x.clone());
                let wx = g.matmul(w, xv);
                let z = g.sigmoid(wx);
                let ux = g.matmul(u, xv);
                let th = g.tanh(ux);
                let h = g.mul(z, th);
                let sq = g.square(h);
                let l = g.mean_all(sq);
                g.value(l).data()[0]
            }
        };
        let mut g = Graph::new();
        let w = g.param(&store, ids[0]);
        let u = g.param(&store, ids[1]);
        let xv = g.constant(x);
        let wx = g.matmul(w, xv);
        let z = g.sigmoid(wx);
        let ux = g.matmul(u, xv);
        let th = g.tanh(ux);
        let h = g.mul(z, th);
        let sq = g.square(h);
        let l = g.mean_all(sq);
        g.backward(l, &mut store);

        assert_close(store.grad(ids[0]), &numeric_grad(&store, ids[0], &f), 2e-2);
        assert_close(store.grad(ids[1]), &numeric_grad(&store, ids[1], &f), 2e-2);
    }

    #[test]
    fn concat_ops_route_gradients() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![1.0, 2.0])),
            ("b", Tensor::vector(vec![3.0, 4.0])),
        ]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let b = g.param(&store, ids[1]);
        let rows = g.concat_rows(&[a, b]);
        // Weight rows so each part receives a distinct gradient.
        let w = g.constant(Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]));
        let weighted = g.mul(rows, w);
        let l1 = g.sum_all(weighted);

        let cols = g.concat_cols(&[a, b]);
        let v = g.constant(Tensor::vector(vec![10.0, 100.0]));
        let mv = g.matmul(cols, v);
        let l2 = g.sum_all(mv);

        let l = g.add(l1, l2);
        g.backward(l, &mut store);

        assert_eq!(store.grad(ids[0]).data(), &[11.0, 12.0]);
        assert_eq!(store.grad(ids[1]).data(), &[103.0, 104.0]);
    }

    #[test]
    fn pinball_matches_definition_and_gradient() {
        let (mut store, ids) = store_with(&[("p", Tensor::vector(vec![0.5, 0.5, 0.5]))]);
        let target = Tensor::vector(vec![0.0, 1.0, 0.5]);
        let qs = [0.5, 0.05, 0.95];
        let mut g = Graph::new();
        let p = g.param(&store, ids[0]);
        let l = g.pinball(p, target.clone(), &qs);
        // Row 0: u = 0 - 0.5 < 0 → (0.5-1)·(-0.5) = 0.25.
        // Row 1: u = 1 - 0.5 ≥ 0 → 0.05·0.5 = 0.025.
        // Row 2: u = 0 → 0.
        assert!((g.value(l).data()[0] - 0.275).abs() < 1e-6);
        g.backward(l, &mut store);
        // Row 0 above target: 1-q = 0.5. Row 1 below: -0.05. Row 2 at: -0.95.
        assert_eq!(store.grad(ids[0]).data(), &[0.5, -0.05, -0.95]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let (mut store, ids) = store_with(&[("a", Tensor::scalar(2.0))]);
        for _ in 0..3 {
            let mut g = Graph::new();
            let a = g.param(&store, ids[0]);
            let l = g.sum_all(a);
            g.backward(l, &mut store);
        }
        assert_eq!(store.grad(ids[0]).data(), &[3.0]);
        store.zero_grads();
        assert_eq!(store.grad(ids[0]).data(), &[0.0]);
    }

    #[test]
    fn fan_out_sums_gradients() {
        // loss = sum(a ⊙ a + a) ⇒ d/da = 2a + 1.
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![1.0, -2.0]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let sq = g.mul(a, a);
        let s = g.add(sq, a);
        let l = g.sum_all(s);
        g.backward(l, &mut store);
        assert_eq!(store.grad(ids[0]).data(), &[3.0, -3.0]);
    }

    #[test]
    fn scale_one_minus_relu_and_add_n() {
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![0.5, -0.5]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let r = g.relu(a); // [0.5, 0]
        let om = g.one_minus(a); // [0.5, 1.5]
        let sc = g.scale(a, 3.0); // [1.5, -1.5]
        let n = g.add_n(&[r, om, sc]);
        let l = g.sum_all(n);
        g.backward(l, &mut store);
        // d/da = relu'(a) - 1 + 3 = [1-1+3, 0-1+3] = [3, 2].
        assert_eq!(store.grad(ids[0]).data(), &[3.0, 2.0]);
        assert_eq!(g.value(n).data(), &[2.5, 0.0]);
    }

    #[test]
    fn fused_gates_match_unfused_chain_bitwise() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![0.3, -1.2, 0.07])),
            ("b", Tensor::vector(vec![-0.5, 0.9, 2.3])),
            ("c", Tensor::vector(vec![0.01, -0.02, 0.4])),
        ]);
        let weight = Tensor::vector(vec![1.0, -2.0, 0.5]);

        // Unfused reference: sigmoid(add(add(a, b), c)) weighted and summed.
        let mut g1 = Graph::new();
        let (a1, b1, c1) = (
            g1.param(&store, ids[0]),
            g1.param(&store, ids[1]),
            g1.param(&store, ids[2]),
        );
        let s1 = g1.add(a1, b1);
        let s2 = g1.add(s1, c1);
        let sig = g1.sigmoid(s2);
        let th = g1.tanh(s2);
        let both = g1.add(sig, th);
        let weighted = g1.mul_const(both, weight.clone());
        let l1 = g1.sum_all(weighted);
        g1.backward(l1, &mut store);
        let reference_value = g1.value(both).clone();
        let reference_grads: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

        // Fused path.
        store.zero_grads();
        let mut g2 = Graph::new();
        let (a2, b2, c2) = (
            g2.param(&store, ids[0]),
            g2.param(&store, ids[1]),
            g2.param(&store, ids[2]),
        );
        let sig = g2.gate_sigmoid(a2, b2, c2);
        let th = g2.gate_tanh(a2, b2, c2);
        let both = g2.add(sig, th);
        let weighted = g2.mul_const(both, weight);
        let l2 = g2.sum_all(weighted);
        g2.backward(l2, &mut store);

        assert_eq!(g2.value(both).data(), reference_value.data());
        for (id, reference) in ids.iter().zip(reference_grads.iter()) {
            assert_eq!(store.grad(*id).data(), reference.data());
        }
    }

    #[test]
    fn lerp_matches_unfused_chain_bitwise() {
        let (mut store, ids) = store_with(&[
            ("z", Tensor::vector(vec![0.2, 0.8, 0.5])),
            ("a", Tensor::vector(vec![1.0, -2.0, 0.3])),
            ("b", Tensor::vector(vec![-0.7, 0.4, 2.0])),
        ]);
        let weight = Tensor::vector(vec![0.5, -1.5, 3.0]);

        // Unfused reference: z ⊙ a + (1 - z) ⊙ b.
        let mut g1 = Graph::new();
        let (z1, a1, b1) = (
            g1.param(&store, ids[0]),
            g1.param(&store, ids[1]),
            g1.param(&store, ids[2]),
        );
        let keep = g1.mul(z1, a1);
        let om = g1.one_minus(z1);
        let new = g1.mul(om, b1);
        let mix = g1.add(keep, new);
        let weighted = g1.mul_const(mix, weight.clone());
        let l1 = g1.sum_all(weighted);
        g1.backward(l1, &mut store);
        let reference_value = g1.value(mix).clone();
        let reference_grads: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

        // Fused path.
        store.zero_grads();
        let mut g2 = Graph::new();
        let (z2, a2, b2) = (
            g2.param(&store, ids[0]),
            g2.param(&store, ids[1]),
            g2.param(&store, ids[2]),
        );
        let mix = g2.lerp(z2, a2, b2);
        let weighted = g2.mul_const(mix, weight);
        let l2 = g2.sum_all(weighted);
        g2.backward(l2, &mut store);

        assert_eq!(g2.value(mix).data(), reference_value.data());
        for (id, reference) in ids.iter().zip(reference_grads.iter()) {
            assert_eq!(store.grad(*id).data(), reference.data());
        }
    }

    #[test]
    fn fused_gate_gradients_match_finite_differences() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![0.3, -0.8])),
            ("b", Tensor::vector(vec![0.1, 0.5])),
            ("z", Tensor::vector(vec![0.4, 0.9])),
        ]);
        let f = |s: &ParamStore| {
            let mut g = Graph::new();
            let a = g.param(s, ids[0]);
            let b = g.param(s, ids[1]);
            let z = g.param(s, ids[2]);
            let gate = g.gate_sigmoid(a, b, z);
            let cand = g.gate_tanh(b, z, a);
            let mix = g.lerp(gate, cand, a);
            let sq = g.square(mix);
            let l = g.mean_all(sq);
            g.value(l).data()[0]
        };
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let b = g.param(&store, ids[1]);
        let z = g.param(&store, ids[2]);
        let gate = g.gate_sigmoid(a, b, z);
        let cand = g.gate_tanh(b, z, a);
        let mix = g.lerp(gate, cand, a);
        let sq = g.square(mix);
        let l = g.mean_all(sq);
        g.backward(l, &mut store);

        for &id in &ids {
            assert_close(store.grad(id), &numeric_grad(&store, id, f), 2e-2);
        }
    }

    #[test]
    fn backward_allocates_no_graph_nodes() {
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![1.0, -2.0]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let sq = g.square(a);
        let l = g.sum_all(sq);
        let nodes_before = g.len();
        g.backward(l, &mut store);
        assert_eq!(g.len(), nodes_before, "backward must not grow the tape");
    }

    #[test]
    fn reset_reuses_the_arena() {
        let (mut store, ids) = store_with(&[("a", Tensor::scalar(2.0))]);
        let mut g = Graph::new();
        for expected in [4.0, 4.0] {
            g.reset();
            assert!(g.is_empty());
            let a = g.param(&store, ids[0]);
            let sq = g.square(a);
            let l = g.sum_all(sq);
            assert_eq!(g.value(sq).data(), &[expected]);
            g.backward(l, &mut store);
        }
        // Two identical passes accumulate twice the gradient.
        assert_eq!(store.grad(ids[0]).data(), &[8.0]);
    }

    #[test]
    fn backward_into_buffer_then_absorb_matches_direct() {
        let (mut store, ids) = store_with(&[("w", Tensor::vector(vec![0.5, -1.0]))]);
        let build = |g: &mut Graph, s: &ParamStore| {
            let w = g.param(s, ids[0]);
            let sq = g.square(w);
            g.sum_all(sq)
        };

        let mut g = Graph::new();
        let l = build(&mut g, &store);
        g.backward(l, &mut store);
        let direct = store.grad(ids[0]).clone();

        store.zero_grads();
        let mut buf = GradBuffer::zeros_like(&store);
        let mut g2 = Graph::new();
        let l2 = build(&mut g2, &store);
        g2.backward_into(l2, &mut buf);
        assert_eq!(store.grad(ids[0]).data(), &[0.0, 0.0]);
        store.absorb(&buf);
        assert_eq!(store.grad(ids[0]).data(), direct.data());

        buf.zero();
        assert_eq!(buf.grad(ids[0]).data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let id = store.add("a", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new();
        let a = g.param(&store, id);
        g.backward(a, &mut store);
    }
}
