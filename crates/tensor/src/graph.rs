//! Tape-based reverse-mode automatic differentiation.

use deeprest_telemetry as telemetry;

use crate::{GradBuffer, ParamId, ParamStore, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// The recorded operation that produced a node. Deliberately not `Clone`:
/// the backward sweep matches ops by reference, and nothing else may copy
/// them.
#[derive(Debug)]
enum Op {
    /// Leaf without gradient (inputs, targets, masks of constants).
    Constant,
    /// Leaf whose gradient flows back into a [`ParamStore`].
    Param(ParamId),
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Hadamard product `a ⊙ b`.
    Mul(Var, Var),
    /// Matrix product `a * b`.
    MatMul(Var, Var),
    /// Logistic sigmoid `σ(a)`.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// `1 - a` elementwise.
    OneMinus(Var),
    /// `c * a` for a compile-time scalar `c`.
    Scale(Var, f32),
    /// `a ⊙ c` for a constant tensor `c` (e.g. self-exclusion masks).
    MulConst(Var, Tensor),
    /// `a - c` for a constant tensor `c` (e.g. regression targets); only
    /// the operand var is needed for the backward pass.
    SubConst(Var),
    /// Elementwise square `a ⊙ a`.
    Square(Var),
    /// Vertical stack of column vectors.
    ConcatRows(Vec<Var>),
    /// Horizontal stack of column vectors into a matrix.
    ConcatCols(Vec<Var>),
    /// Sum of all elements, producing a `(1, 1)` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `(1, 1)` scalar.
    MeanAll(Var),
    /// Elementwise sum of same-shaped vars.
    AddN(Vec<Var>),
    /// Fused gate pre-activation + sigmoid: `σ(a + b + c)`.
    GateSigmoid(Var, Var, Var),
    /// Fused gate pre-activation + tanh: `tanh(a + b + c)`.
    GateTanh(Var, Var, Var),
    /// Fused convex mix `z ⊙ a + (1 - z) ⊙ b` (the GRU output gate).
    Lerp {
        /// Mixing gate in `(0, 1)`.
        z: Var,
        /// Branch weighted by `z`.
        a: Var,
        /// Branch weighted by `1 - z`.
        b: Var,
    },
    /// Pinball (quantile) loss summed over rows; see [`Graph::pinball`].
    Pinball {
        pred: Var,
        target: Tensor,
        quantiles: Vec<f32>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A computation tape.
///
/// Operations append nodes in topological order; [`Graph::backward`] sweeps
/// the tape in reverse, accumulating parameter gradients into the
/// [`ParamStore`] the parameters were read from.
///
/// A graph is intended to be short-lived: build one per forward/backward pass
/// (per truncated-BPTT subsequence during training) and drop it afterwards.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        if self.nodes.len() == self.nodes.capacity() && telemetry::enabled() {
            // This push is about to reallocate the arena — in steady state
            // (warm reuse via `reset`) the counter stays flat.
            telemetry::counter("graph.arena_grow", 1);
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a gradient-less leaf (model input, target, fixed mask).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Constant)
    }

    /// Records a trainable parameter leaf by copying its current value from
    /// `store`. Gradients accumulate back into `store` on [`Graph::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Hadamard product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// `1 - a` elementwise (used for the GRU update gate mix).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 - x);
        self.push(v, Op::OneMinus(a))
    }

    /// Scalar scaling `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push(v, Op::Scale(a, c))
    }

    /// Elementwise product with a constant tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_const(&mut self, a: Var, c: Tensor) -> Var {
        let v = self.value(a).mul(&c);
        self.push(v, Op::MulConst(a, c))
    }

    /// Elementwise difference with a constant tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_const(&mut self, a: Var, c: Tensor) -> Var {
        let v = self.value(a).sub(&c);
        self.push(v, Op::SubConst(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Vertically stacks column vectors (the paper's `a || h` concatenation).
    ///
    /// # Panics
    ///
    /// Panics if any input is not a column vector.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_rows(&tensors);
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Stacks column vectors side by side into a matrix, enabling the
    /// cross-component attention `H_t · α` as one mat-vec.
    ///
    /// # Panics
    ///
    /// Panics if inputs are not identically sized column vectors.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Sum of all elements, yielding a scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements, yielding a scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(v, Op::MeanAll(a))
    }

    /// Elementwise sum of several same-shaped vars in one node.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn add_n(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "Graph::add_n: no inputs");
        let mut v = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            v.add_assign(self.value(p));
        }
        self.push(v, Op::AddN(parts.to_vec()))
    }

    /// Fused `σ(a + b + c)` in a single node — the GRU gate pre-activation
    /// plus activation (Eq. 2) without the two intermediate `Add` nodes.
    /// Values and gradients are bit-for-bit identical to the unfused
    /// `sigmoid(add(add(a, b), c))` chain: the per-element sum associates
    /// left, and the shared upstream term `g ⊙ y ⊙ (1 - y)` is what every
    /// operand of the chain receives.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn gate_sigmoid(&mut self, a: Var, b: Var, c: Var) -> Var {
        let v = self.fused_gate(a, b, c, |s| 1.0 / (1.0 + (-s).exp()));
        self.push(v, Op::GateSigmoid(a, b, c))
    }

    /// Fused `tanh(a + b + c)` in a single node; see [`Graph::gate_sigmoid`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn gate_tanh(&mut self, a: Var, b: Var, c: Var) -> Var {
        let v = self.fused_gate(a, b, c, f32::tanh);
        self.push(v, Op::GateTanh(a, b, c))
    }

    fn fused_gate(&self, a: Var, b: Var, c: Var, act: impl Fn(f32) -> f32) -> Tensor {
        let (ta, tb, tc) = (self.value(a), self.value(b), self.value(c));
        assert_eq!(
            ta.shape(),
            tb.shape(),
            "Graph::fused gate: shape mismatch between summands"
        );
        assert_eq!(
            ta.shape(),
            tc.shape(),
            "Graph::fused gate: shape mismatch between summands"
        );
        let data = ta
            .data()
            .iter()
            .zip(tb.data().iter())
            .zip(tc.data().iter())
            .map(|((&x, &y), &z)| act((x + y) + z))
            .collect();
        Tensor::from_vec(ta.rows(), ta.cols(), data)
    }

    /// Fused convex mix `z ⊙ a + (1 - z) ⊙ b` — the GRU output gate
    /// (Eq. 2's `h_t = z_t ⊙ h_{t-1} + (1 - z_t) ⊙ h̃_t`) in one node
    /// instead of four (`mul`, `one_minus`, `mul`, `add`). Per-element
    /// arithmetic and the backward formulas reproduce the unfused chain's
    /// operation order exactly, so results are bit-for-bit identical.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn lerp(&mut self, z: Var, a: Var, b: Var) -> Var {
        let (tz, ta, tb) = (self.value(z), self.value(a), self.value(b));
        assert_eq!(tz.shape(), ta.shape(), "Graph::lerp: shape mismatch");
        assert_eq!(tz.shape(), tb.shape(), "Graph::lerp: shape mismatch");
        let data = tz
            .data()
            .iter()
            .zip(ta.data().iter())
            .zip(tb.data().iter())
            .map(|((&zi, &ai), &bi)| (zi * ai) + ((1.0 - zi) * bi))
            .collect();
        let v = Tensor::from_vec(tz.rows(), tz.cols(), data);
        self.push(v, Op::Lerp { z, a, b })
    }

    /// Pinball (quantile) loss summed over rows, in the standard orientation
    /// whose minimizer at quantile `q` is the `q`-th quantile of the targets.
    ///
    /// For each row `i`, with `u_i = target_i - pred_i` and quantile `q_i`:
    /// `Q(u|q) = q·u` when `u ≥ 0`, else `(q-1)·u`.
    ///
    /// Note: the paper's Eq. 5 writes the loss in terms of `Δ = ŷ - y` with
    /// the quantile factor on the `Δ ≥ 0` branch, which, taken literally,
    /// makes the head trained at `δ + (1-δ)/2` estimate the *lower* tail.
    /// We use the standard orientation so the Eq. 6 quantiles
    /// `{0.5, (1-δ)/2, δ+(1-δ)/2}` produce the intended
    /// (median, lower, upper) interval.
    ///
    /// # Panics
    ///
    /// Panics if `pred`, `target` and `quantiles` disagree on length, or if
    /// `pred` is not a column vector.
    pub fn pinball(&mut self, pred: Var, target: Tensor, quantiles: &[f32]) -> Var {
        let p = self.value(pred);
        assert_eq!(p.cols(), 1, "Graph::pinball: pred must be a column vector");
        assert_eq!(
            p.rows(),
            target.rows(),
            "Graph::pinball: pred and target length mismatch"
        );
        assert_eq!(
            p.rows(),
            quantiles.len(),
            "Graph::pinball: pred and quantile count mismatch"
        );
        let mut loss = 0.0;
        for ((&pi, &ti), &q) in p
            .data()
            .iter()
            .zip(target.data().iter())
            .zip(quantiles.iter())
        {
            let u = ti - pi;
            loss += if u >= 0.0 { q * u } else { (q - 1.0) * u };
        }
        self.push(
            Tensor::scalar(loss),
            Op::Pinball {
                pred,
                target,
                quantiles: quantiles.to_vec(),
            },
        )
    }

    /// Clears the tape, keeping the node arena's allocation for reuse by the
    /// next forward pass (training builds one graph per truncated-BPTT
    /// subsequence; resetting avoids re-growing the arena every time).
    pub fn reset(&mut self) {
        if self.nodes.capacity() > 0 && telemetry::enabled() {
            telemetry::counter("graph.arena_reuse", 1);
        }
        self.nodes.clear();
    }

    /// Runs the reverse sweep from scalar node `loss`, accumulating parameter
    /// gradients into `store` (gradients are *added*; call
    /// [`ParamStore::zero_grads`] between optimizer steps).
    ///
    /// Takes `&self`: the sweep records nothing on the tape and allocates no
    /// graph nodes.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `(1, 1)` tensor.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        self.backward_with(loss, &mut |id, g| store.grad_mut(id).add_assign(g));
    }

    /// Like [`Graph::backward`], but accumulates into a detached
    /// [`GradBuffer`] instead of the store — the building block of parallel
    /// training, where each subsequence owns a private buffer and buffers
    /// are reduced in subsequence order afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `(1, 1)` tensor.
    pub fn backward_into(&self, loss: Var, buf: &mut GradBuffer) {
        self.backward_with(loss, &mut |id, g| buf.add(id, g));
    }

    /// The reverse sweep, parameterized over the gradient sink. Matches ops
    /// by reference — no per-node `Op` clone.
    fn backward_with(&self, loss: Var, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "Graph::backward: loss must be scalar"
        );
        if telemetry::enabled() {
            telemetry::counter("graph.backward.runs", 1);
            telemetry::gauge("graph.backward.tape_nodes", self.nodes.len() as f64);
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Constant => {}
                Op::Param(id) => sink(*id, &g),
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate_scaled(&mut grads, *b, &g, -1.0);
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(*b));
                    let gb = g.mul(self.value(*a));
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::MatMul(a, b) => {
                    // Transposed-operand kernels: bit-identical to
                    // materializing the transpose, without the copy.
                    let ga = g.matmul_nt(self.value(*b));
                    let gb = self.value(*a).matmul_tn(&g);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let ga = g.zip_map(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, &ga);
                }
                Op::OneMinus(a) => accumulate_scaled(&mut grads, *a, &g, -1.0),
                Op::Scale(a, c) => accumulate_scaled(&mut grads, *a, &g, *c),
                Op::MulConst(a, c) => {
                    let ga = g.mul(c);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::SubConst(a) => accumulate(&mut grads, *a, &g),
                Op::Square(a) => {
                    let x = self.value(*a);
                    let ga = g.zip_map(x, |gi, xi| 2.0 * gi * xi);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let rows = self.value(p).rows();
                        let slice = Tensor::vector(g.data()[offset..offset + rows].to_vec());
                        accumulate(&mut grads, p, &slice);
                        offset += rows;
                    }
                }
                Op::ConcatCols(parts) => {
                    let rows = self.nodes[idx].value.rows();
                    let cols = parts.len();
                    for (c, &p) in parts.iter().enumerate() {
                        let mut col = Tensor::zeros(rows, 1);
                        for r in 0..rows {
                            col.data_mut()[r] = g.data()[r * cols + c];
                        }
                        accumulate(&mut grads, p, &col);
                    }
                }
                Op::SumAll(a) => {
                    let shape = self.value(*a).shape();
                    let ga = Tensor::full(shape.0, shape.1, g.data()[0]);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::MeanAll(a) => {
                    let shape = self.value(*a).shape();
                    let n = (shape.0 * shape.1) as f32;
                    let ga = Tensor::full(shape.0, shape.1, g.data()[0] / n);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::AddN(parts) => {
                    for &p in parts {
                        accumulate(&mut grads, p, &g);
                    }
                }
                Op::GateSigmoid(a, b, c) => {
                    // Every summand of the fused pre-activation receives the
                    // same σ' upstream term, exactly as the unfused chain.
                    let y = &self.nodes[idx].value;
                    let d = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, &d);
                    accumulate(&mut grads, *b, &d);
                    accumulate(&mut grads, *c, &d);
                }
                Op::GateTanh(a, b, c) => {
                    let y = &self.nodes[idx].value;
                    let d = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, &d);
                    accumulate(&mut grads, *b, &d);
                    accumulate(&mut grads, *c, &d);
                }
                Op::Lerp { z, a, b } => {
                    let zv = self.value(*z);
                    let av = self.value(*a);
                    let bv = self.value(*b);
                    // dz = g ⊙ a - g ⊙ b, built from the two products the
                    // unfused chain computes (sign flip is exact; addition
                    // commutes bitwise), so fused == unfused to the bit.
                    let mut dz = g.mul(bv);
                    dz.scale_assign(-1.0);
                    dz.add_assign(&g.mul(av));
                    let da = g.mul(zv);
                    let db = g.zip_map(zv, |gi, zi| gi * (1.0 - zi));
                    accumulate(&mut grads, *z, &dz);
                    accumulate(&mut grads, *a, &da);
                    accumulate(&mut grads, *b, &db);
                }
                Op::Pinball {
                    pred,
                    target,
                    quantiles,
                } => {
                    let p = self.value(*pred);
                    let mut gp = Tensor::zeros(p.rows(), 1);
                    for (i, ((&pi, &ti), &q)) in p
                        .data()
                        .iter()
                        .zip(target.data().iter())
                        .zip(quantiles.iter())
                        .enumerate()
                    {
                        let u = ti - pi;
                        // dL/dpred = -q when under the target, (1-q) above it;
                        // the subgradient at u = 0 uses the u ≥ 0 branch.
                        let d = if u >= 0.0 { -q } else { 1.0 - q };
                        gp.data_mut()[i] = g.data()[0] * d;
                    }
                    accumulate(&mut grads, *pred, &gp);
                }
            }
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: &Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

fn accumulate_scaled(grads: &mut [Option<Tensor>], v: Var, g: &Tensor, scale: f32) {
    match &mut grads[v.0] {
        Some(existing) => existing.axpy(scale, g),
        slot @ None => *slot = Some(g.scale(scale)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[(&str, Tensor)]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = values.iter().map(|(n, t)| s.add(*n, t.clone())).collect();
        (s, ids)
    }

    /// Central finite-difference gradient of `f` w.r.t. parameter `id`.
    /// Perturbs one scratch store in place — no per-element store clones.
    fn numeric_grad(store: &ParamStore, id: ParamId, f: impl Fn(&ParamStore) -> f32) -> Tensor {
        let eps = 1e-3;
        let mut probe = store.clone();
        let shape = store.value(id).shape();
        let mut out = Tensor::zeros(shape.0, shape.1);
        for i in 0..store.value(id).len() {
            let orig = probe.value(id).data()[i];
            probe.value_mut(id).data_mut()[i] = orig + eps;
            let plus = f(&probe);
            probe.value_mut(id).data_mut()[i] = orig - eps;
            let minus = f(&probe);
            probe.value_mut(id).data_mut()[i] = orig;
            out.data_mut()[i] = (plus - minus) / (2.0 * eps);
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "gradient mismatch: analytic {x} vs numeric {y}"
            );
        }
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let (mut store, ids) = store_with(&[
            (
                "w",
                Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.7, -0.4]),
            ),
            ("x", Tensor::vector(vec![1.0, -1.5, 2.0])),
        ]);
        let f = |s: &ParamStore| {
            let mut g = Graph::new();
            let w = g.param(s, ids[0]);
            let x = g.param(s, ids[1]);
            let y = g.matmul(w, x);
            let l = g.sum_all(y);
            g.value(l).data()[0]
        };
        let mut g = Graph::new();
        let w = g.param(&store, ids[0]);
        let x = g.param(&store, ids[1]);
        let y = g.matmul(w, x);
        let l = g.sum_all(y);
        g.backward(l, &mut store);

        assert_close(store.grad(ids[0]), &numeric_grad(&store, ids[0], f), 1e-2);
        assert_close(store.grad(ids[1]), &numeric_grad(&store, ids[1], f), 1e-2);
    }

    #[test]
    fn gru_like_composite_gradients() {
        // z = σ(Wx); h = z ⊙ tanh(Ux); loss = mean(h²) exercises most ops.
        let (mut store, ids) = store_with(&[
            ("w", Tensor::from_vec(2, 2, vec![0.3, -0.1, 0.4, 0.2])),
            ("u", Tensor::from_vec(2, 2, vec![-0.2, 0.6, 0.1, -0.5])),
        ]);
        let x = Tensor::vector(vec![0.8, -0.6]);
        let (w_id, u_id) = (ids[0], ids[1]);
        let f = {
            let x = x.clone();
            move |s: &ParamStore| {
                let mut g = Graph::new();
                let w = g.param(s, w_id);
                let u = g.param(s, u_id);
                let xv = g.constant(x.clone());
                let wx = g.matmul(w, xv);
                let z = g.sigmoid(wx);
                let ux = g.matmul(u, xv);
                let th = g.tanh(ux);
                let h = g.mul(z, th);
                let sq = g.square(h);
                let l = g.mean_all(sq);
                g.value(l).data()[0]
            }
        };
        let mut g = Graph::new();
        let w = g.param(&store, ids[0]);
        let u = g.param(&store, ids[1]);
        let xv = g.constant(x);
        let wx = g.matmul(w, xv);
        let z = g.sigmoid(wx);
        let ux = g.matmul(u, xv);
        let th = g.tanh(ux);
        let h = g.mul(z, th);
        let sq = g.square(h);
        let l = g.mean_all(sq);
        g.backward(l, &mut store);

        assert_close(store.grad(ids[0]), &numeric_grad(&store, ids[0], &f), 2e-2);
        assert_close(store.grad(ids[1]), &numeric_grad(&store, ids[1], &f), 2e-2);
    }

    #[test]
    fn concat_ops_route_gradients() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![1.0, 2.0])),
            ("b", Tensor::vector(vec![3.0, 4.0])),
        ]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let b = g.param(&store, ids[1]);
        let rows = g.concat_rows(&[a, b]);
        // Weight rows so each part receives a distinct gradient.
        let w = g.constant(Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]));
        let weighted = g.mul(rows, w);
        let l1 = g.sum_all(weighted);

        let cols = g.concat_cols(&[a, b]);
        let v = g.constant(Tensor::vector(vec![10.0, 100.0]));
        let mv = g.matmul(cols, v);
        let l2 = g.sum_all(mv);

        let l = g.add(l1, l2);
        g.backward(l, &mut store);

        assert_eq!(store.grad(ids[0]).data(), &[11.0, 12.0]);
        assert_eq!(store.grad(ids[1]).data(), &[103.0, 104.0]);
    }

    #[test]
    fn pinball_matches_definition_and_gradient() {
        let (mut store, ids) = store_with(&[("p", Tensor::vector(vec![0.5, 0.5, 0.5]))]);
        let target = Tensor::vector(vec![0.0, 1.0, 0.5]);
        let qs = [0.5, 0.05, 0.95];
        let mut g = Graph::new();
        let p = g.param(&store, ids[0]);
        let l = g.pinball(p, target.clone(), &qs);
        // Row 0: u = 0 - 0.5 < 0 → (0.5-1)·(-0.5) = 0.25.
        // Row 1: u = 1 - 0.5 ≥ 0 → 0.05·0.5 = 0.025.
        // Row 2: u = 0 → 0.
        assert!((g.value(l).data()[0] - 0.275).abs() < 1e-6);
        g.backward(l, &mut store);
        // Row 0 above target: 1-q = 0.5. Row 1 below: -0.05. Row 2 at: -0.95.
        assert_eq!(store.grad(ids[0]).data(), &[0.5, -0.05, -0.95]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let (mut store, ids) = store_with(&[("a", Tensor::scalar(2.0))]);
        for _ in 0..3 {
            let mut g = Graph::new();
            let a = g.param(&store, ids[0]);
            let l = g.sum_all(a);
            g.backward(l, &mut store);
        }
        assert_eq!(store.grad(ids[0]).data(), &[3.0]);
        store.zero_grads();
        assert_eq!(store.grad(ids[0]).data(), &[0.0]);
    }

    #[test]
    fn fan_out_sums_gradients() {
        // loss = sum(a ⊙ a + a) ⇒ d/da = 2a + 1.
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![1.0, -2.0]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let sq = g.mul(a, a);
        let s = g.add(sq, a);
        let l = g.sum_all(s);
        g.backward(l, &mut store);
        assert_eq!(store.grad(ids[0]).data(), &[3.0, -3.0]);
    }

    #[test]
    fn scale_one_minus_relu_and_add_n() {
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![0.5, -0.5]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let r = g.relu(a); // [0.5, 0]
        let om = g.one_minus(a); // [0.5, 1.5]
        let sc = g.scale(a, 3.0); // [1.5, -1.5]
        let n = g.add_n(&[r, om, sc]);
        let l = g.sum_all(n);
        g.backward(l, &mut store);
        // d/da = relu'(a) - 1 + 3 = [1-1+3, 0-1+3] = [3, 2].
        assert_eq!(store.grad(ids[0]).data(), &[3.0, 2.0]);
        assert_eq!(g.value(n).data(), &[2.5, 0.0]);
    }

    #[test]
    fn fused_gates_match_unfused_chain_bitwise() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![0.3, -1.2, 0.07])),
            ("b", Tensor::vector(vec![-0.5, 0.9, 2.3])),
            ("c", Tensor::vector(vec![0.01, -0.02, 0.4])),
        ]);
        let weight = Tensor::vector(vec![1.0, -2.0, 0.5]);

        // Unfused reference: sigmoid(add(add(a, b), c)) weighted and summed.
        let mut g1 = Graph::new();
        let (a1, b1, c1) = (
            g1.param(&store, ids[0]),
            g1.param(&store, ids[1]),
            g1.param(&store, ids[2]),
        );
        let s1 = g1.add(a1, b1);
        let s2 = g1.add(s1, c1);
        let sig = g1.sigmoid(s2);
        let th = g1.tanh(s2);
        let both = g1.add(sig, th);
        let weighted = g1.mul_const(both, weight.clone());
        let l1 = g1.sum_all(weighted);
        g1.backward(l1, &mut store);
        let reference_value = g1.value(both).clone();
        let reference_grads: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

        // Fused path.
        store.zero_grads();
        let mut g2 = Graph::new();
        let (a2, b2, c2) = (
            g2.param(&store, ids[0]),
            g2.param(&store, ids[1]),
            g2.param(&store, ids[2]),
        );
        let sig = g2.gate_sigmoid(a2, b2, c2);
        let th = g2.gate_tanh(a2, b2, c2);
        let both = g2.add(sig, th);
        let weighted = g2.mul_const(both, weight);
        let l2 = g2.sum_all(weighted);
        g2.backward(l2, &mut store);

        assert_eq!(g2.value(both).data(), reference_value.data());
        for (id, reference) in ids.iter().zip(reference_grads.iter()) {
            assert_eq!(store.grad(*id).data(), reference.data());
        }
    }

    #[test]
    fn lerp_matches_unfused_chain_bitwise() {
        let (mut store, ids) = store_with(&[
            ("z", Tensor::vector(vec![0.2, 0.8, 0.5])),
            ("a", Tensor::vector(vec![1.0, -2.0, 0.3])),
            ("b", Tensor::vector(vec![-0.7, 0.4, 2.0])),
        ]);
        let weight = Tensor::vector(vec![0.5, -1.5, 3.0]);

        // Unfused reference: z ⊙ a + (1 - z) ⊙ b.
        let mut g1 = Graph::new();
        let (z1, a1, b1) = (
            g1.param(&store, ids[0]),
            g1.param(&store, ids[1]),
            g1.param(&store, ids[2]),
        );
        let keep = g1.mul(z1, a1);
        let om = g1.one_minus(z1);
        let new = g1.mul(om, b1);
        let mix = g1.add(keep, new);
        let weighted = g1.mul_const(mix, weight.clone());
        let l1 = g1.sum_all(weighted);
        g1.backward(l1, &mut store);
        let reference_value = g1.value(mix).clone();
        let reference_grads: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

        // Fused path.
        store.zero_grads();
        let mut g2 = Graph::new();
        let (z2, a2, b2) = (
            g2.param(&store, ids[0]),
            g2.param(&store, ids[1]),
            g2.param(&store, ids[2]),
        );
        let mix = g2.lerp(z2, a2, b2);
        let weighted = g2.mul_const(mix, weight);
        let l2 = g2.sum_all(weighted);
        g2.backward(l2, &mut store);

        assert_eq!(g2.value(mix).data(), reference_value.data());
        for (id, reference) in ids.iter().zip(reference_grads.iter()) {
            assert_eq!(store.grad(*id).data(), reference.data());
        }
    }

    #[test]
    fn fused_gate_gradients_match_finite_differences() {
        let (mut store, ids) = store_with(&[
            ("a", Tensor::vector(vec![0.3, -0.8])),
            ("b", Tensor::vector(vec![0.1, 0.5])),
            ("z", Tensor::vector(vec![0.4, 0.9])),
        ]);
        let f = |s: &ParamStore| {
            let mut g = Graph::new();
            let a = g.param(s, ids[0]);
            let b = g.param(s, ids[1]);
            let z = g.param(s, ids[2]);
            let gate = g.gate_sigmoid(a, b, z);
            let cand = g.gate_tanh(b, z, a);
            let mix = g.lerp(gate, cand, a);
            let sq = g.square(mix);
            let l = g.mean_all(sq);
            g.value(l).data()[0]
        };
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let b = g.param(&store, ids[1]);
        let z = g.param(&store, ids[2]);
        let gate = g.gate_sigmoid(a, b, z);
        let cand = g.gate_tanh(b, z, a);
        let mix = g.lerp(gate, cand, a);
        let sq = g.square(mix);
        let l = g.mean_all(sq);
        g.backward(l, &mut store);

        for &id in &ids {
            assert_close(store.grad(id), &numeric_grad(&store, id, f), 2e-2);
        }
    }

    #[test]
    fn backward_allocates_no_graph_nodes() {
        let (mut store, ids) = store_with(&[("a", Tensor::vector(vec![1.0, -2.0]))]);
        let mut g = Graph::new();
        let a = g.param(&store, ids[0]);
        let sq = g.square(a);
        let l = g.sum_all(sq);
        let nodes_before = g.len();
        g.backward(l, &mut store);
        assert_eq!(g.len(), nodes_before, "backward must not grow the tape");
    }

    #[test]
    fn reset_reuses_the_arena() {
        let (mut store, ids) = store_with(&[("a", Tensor::scalar(2.0))]);
        let mut g = Graph::new();
        for expected in [4.0, 4.0] {
            g.reset();
            assert!(g.is_empty());
            let a = g.param(&store, ids[0]);
            let sq = g.square(a);
            let l = g.sum_all(sq);
            assert_eq!(g.value(sq).data(), &[expected]);
            g.backward(l, &mut store);
        }
        // Two identical passes accumulate twice the gradient.
        assert_eq!(store.grad(ids[0]).data(), &[8.0]);
    }

    #[test]
    fn backward_into_buffer_then_absorb_matches_direct() {
        let (mut store, ids) = store_with(&[("w", Tensor::vector(vec![0.5, -1.0]))]);
        let build = |g: &mut Graph, s: &ParamStore| {
            let w = g.param(s, ids[0]);
            let sq = g.square(w);
            g.sum_all(sq)
        };

        let mut g = Graph::new();
        let l = build(&mut g, &store);
        g.backward(l, &mut store);
        let direct = store.grad(ids[0]).clone();

        store.zero_grads();
        let mut buf = GradBuffer::zeros_like(&store);
        let mut g2 = Graph::new();
        let l2 = build(&mut g2, &store);
        g2.backward_into(l2, &mut buf);
        assert_eq!(store.grad(ids[0]).data(), &[0.0, 0.0]);
        store.absorb(&buf);
        assert_eq!(store.grad(ids[0]).data(), direct.data());

        buf.zero();
        assert_eq!(buf.grad(ids[0]).data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let id = store.add("a", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new();
        let a = g.param(&store, id);
        g.backward(a, &mut store);
    }
}
