//! Small dense linear-algebra utilities: symmetric eigendecomposition and
//! principal component analysis.
//!
//! The paper's Fig. 21 projects the "application-independent part" of each
//! expert's GRU parameters onto 2-D with PCA and observes that MongoDB
//! experts cluster. Expert parameter vectors are long (tens of thousands of
//! scalars) while the number of experts is small, so [`pca`] uses the Gram
//! (dual) formulation: eigendecompose the `n × n` centered Gram matrix
//! instead of the `d × d` covariance.

use crate::Tensor;

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvector `i` is column `i` of the returned matrix.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn symmetric_eigen(m: &Tensor) -> (Vec<f32>, Tensor) {
    let n = m.rows();
    assert_eq!(n, m.cols(), "symmetric_eigen: matrix must be square");
    let mut a = m.clone();
    let mut v = identity(n);

    // Convergence is judged relative to the matrix's own magnitude: an
    // absolute cutoff would never fire for large-norm inputs (Gram matrices
    // of long parameter vectors easily reach 1e8+, where f32 off-diagonals
    // cannot shrink below ~norm·ε) and would stop too early for tiny ones.
    let frob: f32 = (0..n)
        .flat_map(|p| (0..n).map(move |q| (p, q)))
        .map(|(p, q)| {
            let x = m.get(p, q);
            x * x
        })
        .sum::<f32>()
        .sqrt();
    let tol = (frob * n as f32 * f32::EPSILON).max(f32::MIN_POSITIVE);

    // Cyclic Jacobi: sweep all off-diagonal pairs until they vanish.
    for _sweep in 0..100 {
        let mut off = 0.0f32;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a.get(p, q).abs();
            }
        }
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides: A ← GᵀAG.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut pairs: Vec<(f32, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

    let eigenvalues: Vec<f32> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Tensor::zeros(n, n);
    for (out_col, &(_, src_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, out_col, v.get(r, src_col));
        }
    }
    (eigenvalues, vectors)
}

/// The result of a [`pca`] projection.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-sample coordinates in the principal subspace (`n × k`, row per
    /// input sample).
    pub projected: Vec<Vec<f32>>,
    /// Variance explained by each retained component, in `[0, 1]`.
    pub explained_variance_ratio: Vec<f32>,
}

/// Projects `samples` (each a `d`-dimensional vector) onto their top `k`
/// principal components using the Gram-matrix trick.
///
/// Complexity is `O(n²·d + n³)` for `n` samples, independent of `d²`, which
/// makes it practical for a handful of experts with very long parameter
/// vectors.
///
/// # Panics
///
/// Panics if `samples` is empty, dimensions are inconsistent, or
/// `k > samples.len()`.
pub fn pca(samples: &[Vec<f32>], k: usize) -> Pca {
    let n = samples.len();
    assert!(n > 0, "pca: no samples");
    let d = samples[0].len();
    assert!(
        samples.iter().all(|s| s.len() == d),
        "pca: inconsistent sample dimensionality"
    );
    assert!(
        k <= n,
        "pca: cannot extract {k} components from {n} samples"
    );

    // Center the data.
    let mut mean = vec![0.0f64; d];
    for s in samples {
        for (m, &x) in mean.iter_mut().zip(s.iter()) {
            *m += f64::from(x);
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            s.iter()
                .zip(mean.iter())
                .map(|(&x, &m)| (f64::from(x) - m) as f32)
                .collect()
        })
        .collect();

    // Gram matrix G = X Xᵀ (n × n).
    let mut gram = Tensor::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let dot: f32 = centered[i]
                .iter()
                .zip(centered[j].iter())
                .map(|(&a, &b)| a * b)
                .sum();
            gram.set(i, j, dot);
            gram.set(j, i, dot);
        }
    }

    let (eigenvalues, eigenvectors) = symmetric_eigen(&gram);
    let total: f32 = eigenvalues.iter().map(|&e| e.max(0.0)).sum();

    // Projection of sample i onto component c is √λ_c · U[i, c] where U are
    // the Gram eigenvectors: X·v_c = √λ_c · u_c for v_c = Xᵀu_c/√λ_c.
    let mut projected = vec![vec![0.0f32; k]; n];
    let mut ratio = Vec::with_capacity(k);
    for c in 0..k {
        let lambda = eigenvalues[c].max(0.0);
        let sqrt_l = lambda.sqrt();
        for (i, row) in projected.iter_mut().enumerate() {
            row[c] = sqrt_l * eigenvectors.get(i, c);
        }
        ratio.push(if total > 0.0 { lambda / total } else { 0.0 });
    }

    Pca {
        projected,
        explained_variance_ratio: ratio,
    }
}

fn identity(n: usize) -> Tensor {
    let mut m = Tensor::zeros(n, n);
    for i in 0..n {
        m.set(i, i, 1.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = Tensor::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, _) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 2.0).abs() < 1e-5);
        assert!((vals[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eigen_satisfies_definition() {
        let m = Tensor::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 1.0).abs() < 1e-5);
        for (c, &val) in vals.iter().enumerate() {
            let v = Tensor::vector(vec![vecs.get(0, c), vecs.get(1, c)]);
            let mv = m.matmul(&v);
            let lv = v.scale(val);
            for i in 0..2 {
                assert!((mv.data()[i] - lv.data()[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn eigen_converges_for_large_magnitude_matrices() {
        // A Gram matrix of long parameter vectors: entries around 1e8. The
        // old absolute `off < 1e-9` cutoff could never fire here — f32
        // rounding keeps off-diagonals stuck near norm·ε ≈ 10 — so the
        // solver burned all 100 sweeps. The relative tolerance converges
        // and the eigenvalues scale exactly with the matrix.
        let s = 1e8f32;
        let m = Tensor::from_vec(2, 2, vec![2.0 * s, s, s, 2.0 * s]);
        let (vals, vecs) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0 * s).abs() < 3.0 * s * 1e-5);
        assert!((vals[1] - s).abs() < s * 1e-5);
        // Eigenvectors stay orthonormal.
        for c in 0..2 {
            let norm = vecs.get(0, c).hypot(vecs.get(1, c));
            assert!((norm - 1.0).abs() < 1e-4, "column {c} norm {norm}");
        }
        let dot = vecs.get(0, 0) * vecs.get(0, 1) + vecs.get(1, 0) * vecs.get(1, 1);
        assert!(dot.abs() < 1e-4, "columns not orthogonal: {dot}");
    }

    #[test]
    fn eigen_of_tiny_magnitude_matrix_still_resolves() {
        // The relative tolerance must also not *overshoot* for tiny inputs:
        // eigenvalues around 1e-6 still come out in order.
        let s = 1e-6f32;
        let m = Tensor::from_vec(2, 2, vec![2.0 * s, s, s, 2.0 * s]);
        let (vals, _) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0 * s).abs() < 3.0 * s * 1e-4);
        assert!((vals[1] - s).abs() < s * 1e-4);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Points spread along (1, 1, 0) with a little noise in (1, -1, 0).
        let samples: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                let t = (i as f32 - 10.0) / 2.0;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                vec![t + noise, t - noise, 0.0]
            })
            .collect();
        let result = pca(&samples, 2);
        assert!(result.explained_variance_ratio[0] > 0.99);
        // First coordinate should be monotone in t.
        let first: Vec<f32> = result.projected.iter().map(|p| p[0]).collect();
        let increasing = first.windows(2).all(|w| w[1] >= w[0]);
        let decreasing = first.windows(2).all(|w| w[1] <= w[0]);
        assert!(increasing || decreasing);
    }

    #[test]
    fn pca_separates_two_clusters() {
        let mut samples = Vec::new();
        for i in 0..5 {
            samples.push(vec![10.0 + 0.01 * i as f32, 10.0, 0.0, 1.0]);
            samples.push(vec![-10.0 - 0.01 * i as f32, -10.0, 0.5, -1.0]);
        }
        let result = pca(&samples, 1);
        let signs: Vec<bool> = result.projected.iter().map(|p| p[0] > 0.0).collect();
        // Alternating samples belong to opposite clusters.
        for pair in signs.chunks(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn pca_rejects_empty_input() {
        let _ = pca(&[], 1);
    }
}
