//! The dense rank-2 tensor type.

use deeprest_telemetry as telemetry;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::kernel;

/// A dense, row-major, rank-2 `f32` tensor.
///
/// Column vectors are represented as `(n, 1)` tensors and scalars as `(1, 1)`.
/// All shape mismatches are programming errors and panic with a descriptive
/// message, mirroring the conventions of mainstream tensor libraries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: data length {} does not match shape ({rows}, {cols})",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a column vector `(n, 1)` from `data`.
    pub fn vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self::from_vec(rows, 1, data)
    }

    /// Creates a `(1, 1)` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![0.0; rows * cols])
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![1.0; rows * cols])
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self::from_vec(rows, cols, vec![value; rows * cols])
    }

    /// Creates a tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Tensor::get: index ({r}, {c}) out of bounds for shape {:?}",
            self.shape()
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "Tensor::set: index ({r}, {c}) out of bounds for shape {:?}",
            self.shape()
        );
        self.data[r * self.cols + c] = value;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element, writing into `out` (which is resized to
    /// `self`'s shape, reusing its allocation). The output-reusing twin of
    /// [`Tensor::map`], used by the graph's pooled-scratch node evaluation.
    pub fn map_into(&self, out: &mut Self, f: impl Fn(f32) -> f32) {
        out.reshape_to(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(v);
        }
    }

    /// Applies `f` elementwise to `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_map");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Self::from_vec(self.rows, self.cols, data)
    }

    /// Applies `f` elementwise to `self` and `other`, writing into `out`
    /// (resized to `self`'s shape, reusing its allocation).
    ///
    /// # Panics
    ///
    /// Panics if `self` and `other` differ in shape.
    pub fn zip_map_into(&self, other: &Self, out: &mut Self, f: impl Fn(f32, f32) -> f32) {
        self.assert_same_shape(other, "zip_map_into");
        out.reshape_to(self.rows, self.cols);
        for (o, (&a, &b)) in out
            .data
            .iter_mut()
            .zip(self.data.iter().zip(other.data.iter()))
        {
            *o = f(a, b);
        }
    }

    /// Copies `src`'s shape and contents into `self`, reusing the backing
    /// allocation when it is large enough.
    pub fn copy_from(&mut self, src: &Self) {
        self.reshape_to(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes in place to `(rows, cols)`, growing or shrinking the backing
    /// buffer as needed (new elements are zero). Existing capacity is
    /// reused; contents are unspecified unless the caller overwrites them.
    pub fn reshape_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Adds `scale * other` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Self) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale`, returning a new tensor.
    pub fn scale(&self, scale: f32) -> Self {
        self.map(|v| v * scale)
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_assign(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix product `self * other`.
    ///
    /// Runs on the lane-blocked kernels of [`crate::kernel`]: every output
    /// element accumulates into eight fixed lanes (term `k` in lane `k % 8`,
    /// ascending `k`) reduced in a fixed tree order, so the bits are
    /// identical on every ISA and dispatch path. A `cols == 1` right operand
    /// dispatches to the GEMV fast path (the estimator's products are almost
    /// all matrix x vector), which may take a branch-free sparse kernel on
    /// zero-laden vectors — still bit-identical for finite inputs.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into `out` (resized in place, reusing its
    /// allocation). Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols,
            other.rows,
            "Tensor::matmul: inner dimensions differ ({:?} x {:?})",
            self.shape(),
            other.shape()
        );
        out.reshape_to(self.rows, other.cols);
        if other.cols == 1 {
            telemetry::counter("kernel.gemv", 1);
            kernel::gemv_into(&mut out.data, &self.data, self.rows, self.cols, &other.data);
        } else {
            telemetry::counter("kernel.gemm", 1);
            kernel::gemm_into(
                &mut out.data,
                &self.data,
                self.rows,
                self.cols,
                &other.data,
                other.cols,
            );
        }
    }

    /// Matrix product with transposed right operand: `self * other^T`,
    /// without materializing the transpose.
    ///
    /// Both operands are walked row-major (the contraction runs along rows
    /// of both), so every output element is a dot of two sequential streams
    /// — the cache-friendly layout for the backward pass's `g · B^T` outer
    /// products. Per-element lane-blocked accumulation order matches
    /// [`Tensor::matmul`] on a materialized transpose exactly, so results
    /// are bit-for-bit identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] writing into `out` (resized in place, reusing
    /// its allocation). Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols,
            other.cols,
            "Tensor::matmul_nt: contraction dimensions differ ({:?} x {:?}^T)",
            self.shape(),
            other.shape()
        );
        out.reshape_to(self.rows, other.rows);
        if other.rows == 1 {
            telemetry::counter("kernel.gemv", 1);
        } else {
            telemetry::counter("kernel.gemm", 1);
        }
        kernel::gemm_nt_into(
            &mut out.data,
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
        );
    }

    /// Matrix product with transposed left operand: `self^T * other`,
    /// without materializing the transpose.
    ///
    /// The contraction walks `self` row-major in lane-wide column blocks, so
    /// all three buffers stream sequentially; a single-column `other` (the
    /// backward pass's `A^T · g` GEMV-T) reads `self` exactly once.
    /// Per-element lane-blocked accumulation order matches
    /// [`Tensor::matmul`] on a materialized transpose exactly, so results
    /// are bit-for-bit identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] writing into `out` (resized in place, reusing
    /// its allocation). Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.rows,
            other.rows,
            "Tensor::matmul_tn: contraction dimensions differ ({:?}^T x {:?})",
            self.shape(),
            other.shape()
        );
        out.reshape_to(self.cols, other.cols);
        if other.cols == 1 {
            telemetry::counter("kernel.gemv", 1);
        } else {
            telemetry::counter("kernel.gemm", 1);
        }
        kernel::gemm_tn_into(
            &mut out.data,
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
        );
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest element; negative infinity for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element; positive infinity for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Dot product between two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Self) -> f32 {
        self.assert_same_shape(other, "dot");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Stacks column vectors vertically into one longer column vector.
    ///
    /// # Panics
    ///
    /// Panics if any input is not a column vector.
    pub fn concat_rows(parts: &[&Tensor]) -> Self {
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(
                p.cols, 1,
                "Tensor::concat_rows: inputs must be column vectors"
            );
            data.extend_from_slice(&p.data);
        }
        Tensor::vector(data)
    }

    /// Places column vectors side by side into a `(rows, parts.len())` matrix.
    ///
    /// # Panics
    ///
    /// Panics if inputs are not column vectors of identical length.
    pub fn concat_cols(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "Tensor::concat_cols: no inputs");
        let rows = parts[0].rows;
        let cols = parts.len();
        let mut out = Tensor::zeros(rows, cols);
        for (c, p) in parts.iter().enumerate() {
            assert_eq!(
                (p.rows, p.cols),
                (rows, 1),
                "Tensor::concat_cols: inputs must be ({rows}, 1) column vectors"
            );
            for r in 0..rows {
                out.data[r * cols + c] = p.data[r];
            }
        }
        out
    }

    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn vector_and_scalar_shapes() {
        assert_eq!(Tensor::vector(vec![1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Tensor::scalar(7.0).shape(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_vector() {
        let m = Tensor::from_vec(2, 2, vec![1.0, -1.0, 2.0, 0.5]);
        let v = Tensor::vector(vec![4.0, 2.0]);
        let out = m.matmul(&v);
        assert_eq!(out.shape(), (2, 1));
        assert_eq!(out.data(), &[2.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose_bitwise() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 5, 6), (16, 33, 9)] {
            let mut a = Tensor::rand_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform(n, k, -2.0, 2.0, &mut rng);
            // Zero operands must not disturb the lane-ordered bits.
            a.data_mut()[0] = 0.0;
            let fused = a.matmul_nt(&b);
            let reference = a.matmul(&b.transpose());
            assert_eq!(fused.data(), reference.data(), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose_bitwise() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for (m, k, n) in [(1, 1, 1), (3, 2, 4), (5, 7, 6), (33, 16, 9)] {
            let mut a = Tensor::rand_uniform(k, m, -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform(k, n, -2.0, 2.0, &mut rng);
            a.data_mut()[0] = 0.0;
            let fused = a.matmul_tn(&b);
            let reference = a.transpose().matmul(&b);
            assert_eq!(fused.data(), reference.data(), "shape ({m},{k},{n})");
        }
    }

    #[test]
    #[should_panic(expected = "contraction dimensions differ")]
    fn matmul_nt_rejects_mismatch() {
        let _ = Tensor::zeros(2, 3).matmul_nt(&Tensor::zeros(2, 4));
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, -4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, -2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, 6.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.dot(&b), -5.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::vector(vec![1.0, 1.0]);
        a.axpy(2.0, &Tensor::vector(vec![3.0, -1.0]));
        assert_eq!(a.data(), &[7.0, -1.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[3.5, -0.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert!((t.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, 4.0]);
        let stacked = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(stacked.shape(), (4, 1));
        assert_eq!(stacked.data(), &[1.0, 2.0, 3.0, 4.0]);

        let side = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(side.shape(), (2, 2));
        assert_eq!(side.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn matmul_into_reuses_allocation_and_matches() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        // Start from a wrong-shaped, over-sized output buffer.
        let mut out = Tensor::zeros(4, 4);
        let cap = out.data.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.data(), a.matmul(&b).data());
        assert_eq!(out.data.capacity(), cap, "must reuse the allocation");
    }

    #[test]
    fn map_and_zip_map_into_match_allocating_forms() {
        let a = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        let b = Tensor::from_vec(2, 2, vec![0.5, 0.5, 2.0, 2.0]);
        let mut out = Tensor::zeros(1, 1);
        a.map_into(&mut out, |v| v * 2.0);
        assert_eq!(out, a.map(|v| v * 2.0));
        a.zip_map_into(&b, &mut out, |x, y| x * y);
        assert_eq!(out, a.mul(&b));
    }

    #[test]
    fn rand_uniform_is_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(8, 8, -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|v| (-0.5..0.5).contains(v)));
    }
}
