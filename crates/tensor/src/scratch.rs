//! Recycled scratch buffers backing the graph's zero-allocation steady
//! state.
//!
//! Training builds one tape per BPTT subsequence, resets it, and builds the
//! next with the same node shapes. Instead of allocating a fresh `Vec<f32>`
//! per node value (and per backward-pass gradient), the graph draws buffers
//! from a [`BufferPool`] and returns them on [`Graph::reset`](crate::Graph::reset),
//! so after the first pass warm-up every take is a reuse.
//!
//! The free lists are bucketed by exact length: a take is served only by a
//! recycled buffer of the requested size, never by resizing a mismatched
//! one. For a workload that repeats a fixed shape sequence (exactly what a
//! training loop over same-length subsequences does) this converges after a
//! single pass — pass one allocates every distinct buffer once, and every
//! later pass finds each size in its bucket — and it makes the steady state
//! provable without reasoning about which buffer lands at which site.
//!
//! Telemetry:
//! * `kernel.alloc` — a take found no recycled buffer of the requested
//!   size and allocated. Zero in steady state; the invariant is asserted
//!   end-to-end by `crates/core/tests/zero_alloc.rs`.
//! * `kernel.scratch_reuse` — a take was served from a recycled buffer.

use std::collections::BTreeMap;

use deeprest_telemetry as telemetry;

use crate::tensor::Tensor;

/// Size-bucketed free lists of `f32` buffers. See the [module docs](self).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: BTreeMap<usize, Vec<Vec<f32>>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements, reusing a recycled
    /// allocation of that size when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some(mut buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            if telemetry::enabled() {
                telemetry::counter("kernel.scratch_reuse", 1);
            }
            buf.fill(0.0);
            return buf;
        }
        telemetry::counter("kernel.alloc", 1);
        vec![0.0; len]
    }

    /// Takes a zeroed `(rows, cols)` tensor backed by a pooled buffer.
    pub fn take_tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Takes a pooled copy of `src`.
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.take(src.len());
        buf.copy_from_slice(src.data());
        Tensor::from_vec(src.rows(), src.cols(), buf)
    }

    /// Returns a buffer to the pool for reuse by takes of the same length.
    pub fn put(&mut self, buf: Vec<f32>) {
        // Zero-capacity buffers are not worth tracking.
        if buf.capacity() > 0 {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Returns a tensor's backing buffer to the pool for reuse.
    pub fn put_tensor(&mut self, t: Tensor) {
        self.put(t.into_data());
    }

    /// Number of buffers currently recycled and idle.
    pub fn idle(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeprest_telemetry::{self as telemetry, MemorySink};
    use std::sync::Arc;

    #[test]
    fn take_zeroes_and_put_recycles() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take(4);
        assert_eq!(buf, vec![0.0; 4]);
        buf[0] = 7.0;
        let ptr = buf.as_ptr();
        pool.put(buf);
        assert_eq!(pool.idle(), 1);
        let again = pool.take(4);
        assert_eq!(
            again,
            vec![0.0; 4],
            "recycled buffers must come back zeroed"
        );
        assert_eq!(again.as_ptr(), ptr, "same allocation must be reused");
    }

    #[test]
    fn steady_state_reuse_is_visible_and_alloc_free() {
        let sink = Arc::new(MemorySink::new());
        telemetry::with_sink(sink.clone(), || {
            let mut pool = BufferPool::new();
            // Warm-up: one allocation.
            let t = pool.take_tensor(3, 2);
            pool.put_tensor(t);
            // Steady state: ten reuse cycles of the same shape.
            for _ in 0..10 {
                let t = pool.take_tensor(3, 2);
                pool.put_tensor(t);
            }
        });
        assert_eq!(sink.counter("kernel.alloc"), 1);
        assert_eq!(sink.counter("kernel.scratch_reuse"), 10);
    }

    #[test]
    fn size_mismatch_allocates_instead_of_regrowing() {
        let sink = Arc::new(MemorySink::new());
        telemetry::with_sink(sink.clone(), || {
            let mut pool = BufferPool::new();
            let t = pool.take_tensor(2, 1);
            pool.put_tensor(t);
            // A different size misses its bucket and allocates fresh; the
            // recycled size-2 buffer is untouched and still serves its own
            // size afterwards.
            let big = pool.take_tensor(64, 64);
            pool.put_tensor(big);
            let _ = pool.take_tensor(2, 1);
        });
        assert_eq!(sink.counter("kernel.alloc"), 2);
        assert_eq!(sink.counter("kernel.scratch_reuse"), 1);
    }

    #[test]
    fn interleaved_shape_sequences_stay_alloc_free_after_one_pass() {
        let sink = Arc::new(MemorySink::new());
        telemetry::with_sink(sink.clone(), || {
            let mut pool = BufferPool::new();
            // Two passes of a mixed shape sequence; bucketing guarantees the
            // second pass is entirely reuse regardless of put order.
            for _ in 0..2 {
                let a = pool.take(8);
                let b = pool.take(1);
                let c = pool.take(8);
                let d = pool.take(64);
                pool.put(d);
                pool.put(a);
                pool.put(c);
                pool.put(b);
            }
        });
        assert_eq!(sink.counter("kernel.alloc"), 4);
        assert_eq!(sink.counter("kernel.scratch_reuse"), 4);
    }
}
