//! Trainable parameter storage shared across unrolled computation graphs.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of the parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns trainable parameter tensors and their accumulated gradients.
///
/// Graphs are short-lived (one per training subsequence in truncated BPTT)
/// while parameters persist for the lifetime of a model, so parameters live
/// here rather than on the tape. [`crate::Graph::param`] copies a parameter's
/// current value into a graph as a leaf, and [`crate::Graph::backward`]
/// accumulates the resulting gradient back into this store.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Registers a parameter with a diagnostic `name`, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar values across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value of a parameter (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient of a parameter.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Resets every gradient to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Mutable access to every accumulated gradient, in parameter order.
    ///
    /// Lets optimizers sanitize or rescale gradients in one pass without
    /// materializing a list of ids (which would allocate every step).
    pub fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    /// Adds a raw gradient slice elementwise into the slot for `id`.
    ///
    /// The analytic training engine accumulates gradients in flat per-shard
    /// arenas rather than [`GradBuffer`]s; this is its fold entry point.
    /// Callers must fold arenas in a fixed order (batch position, then
    /// shard, then expert) independent of the thread schedule — the same
    /// contract [`ParamStore::absorb`] relies on — so accumulated gradients
    /// are bit-for-bit identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the parameter's element count.
    pub fn grad_add_slice(&mut self, id: ParamId, data: &[f32]) {
        let g = self.grads[id.0].data_mut();
        assert_eq!(
            g.len(),
            data.len(),
            "ParamStore::grad_add_slice: length mismatch"
        );
        for (gi, &di) in g.iter_mut().zip(data.iter()) {
            *gi += di;
        }
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clipping norm. This is the standard remedy for the
    /// exploding gradients recurrent networks are prone to.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(scale);
            }
        }
        norm
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

/// A detached, parameter-shaped gradient accumulator.
///
/// Parallel training runs backward passes for many subsequences
/// concurrently; each pass writes into its own `GradBuffer` (no shared
/// mutable state), and the buffers are then folded into the owning
/// [`ParamStore`] in a fixed order via [`ParamStore::absorb`]. Because the
/// reduction order is the subsequence order — not the thread schedule —
/// accumulated gradients are bit-for-bit identical at any thread count.
#[derive(Clone, Debug)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// A zeroed buffer with one gradient slot per parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self {
            grads: store
                .values
                .iter()
                .map(|v| Tensor::zeros(v.rows(), v.cols()))
                .collect(),
        }
    }

    /// Adds `g` into the slot for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the originating store or shapes
    /// differ.
    pub fn add(&mut self, id: ParamId, g: &Tensor) {
        self.grads[id.0].add_assign(g);
    }

    /// The accumulated gradient for `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Resets every slot to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }
}

impl ParamStore {
    /// All accumulated gradients, indexed by [`ParamId::index`].
    pub fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    /// Applies `f(index, value, grad)` to every parameter, fanning the
    /// disjoint per-parameter updates out across `pool`. Used by optimizers;
    /// updates are elementwise-independent, so the result is identical at
    /// any thread count.
    pub fn par_update(
        &mut self,
        pool: &crate::pool::Pool,
        f: impl Fn(usize, &mut Tensor, &Tensor) + Sync,
    ) {
        let grads = &self.grads;
        pool.for_each_mut(&mut self.values, |i, v| f(i, v, &grads[i]));
    }

    /// Folds a [`GradBuffer`] into this store's accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was built from a store with a different parameter
    /// layout.
    pub fn absorb(&mut self, buf: &GradBuffer) {
        assert_eq!(
            self.grads.len(),
            buf.grads.len(),
            "ParamStore::absorb: buffer layout mismatch"
        );
        for (g, b) in self.grads.iter_mut().zip(buf.grads.iter()) {
            g.add_assign(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::vector(vec![1.0, 2.0]));
        let b = s.add("b", Tensor::scalar(3.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.scalar_count(), 3);
        assert_eq!(s.value(a).data(), &[1.0, 2.0]);
        assert_eq!(s.name(b), "b");
        assert_eq!(s.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_and_clip_grads() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::vector(vec![0.0, 0.0]));
        *s.grad_mut(a) = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(s.grad_norm(), 5.0);

        let pre = s.clip_grad_norm(1.0);
        assert_eq!(pre, 5.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);

        s.zero_grads();
        assert_eq!(s.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_leaves_small_grads_alone() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::scalar(0.0));
        *s.grad_mut(a) = Tensor::scalar(0.5);
        s.clip_grad_norm(1.0);
        assert_eq!(s.grad(a).data(), &[0.5]);
    }
}
