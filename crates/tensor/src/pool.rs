//! A deterministic scoped thread pool for data-parallel workloads.
//!
//! Training and inference fan work out over independent items (truncated-BPTT
//! subsequences, expert forward passes, benchmark repeats). This module
//! provides the one primitive all of them share: [`Pool::map`], which runs a
//! pure-per-index function over `0..n` across a fixed number of threads and
//! returns the results **in index order**.
//!
//! Determinism is by construction, not by luck:
//!
//! * the index range is split into contiguous chunks with a fixed rule
//!   (`ceil(n / threads)`), so the assignment of indices to workers depends
//!   only on `n` and the thread count — never on scheduling;
//! * each worker writes its own results vector, and the chunks are
//!   concatenated in index order after every worker joined;
//! * callers that reduce (e.g. gradient accumulation) therefore see operands
//!   in exactly the same order as a serial loop, so floating-point results
//!   are bit-for-bit identical at any thread count.
//!
//! The pool is built on [`std::thread::scope`]: threads are spawned per call
//! and joined before `map` returns, so borrowed data (parameter stores,
//! feature matrices) can be captured by reference with no `'static` bound
//! and no unsafe code.
//!
//! The global pool size comes from the `DEEPREST_THREADS` environment
//! variable when set (a positive integer; `1` forces serial execution),
//! falling back to [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::OnceLock;

use deeprest_fault as fault;
use deeprest_telemetry as telemetry;

/// A worker job died instead of returning results.
///
/// Produced by [`Pool::try_map`], which contains each worker's panic with
/// `catch_unwind` so one poisoned job fails that call, not the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolError {
    /// First index (inclusive) of the chunk whose worker panicked.
    pub lo: usize,
    /// Last index (exclusive) of the chunk whose worker panicked.
    pub hi: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool worker for indices {}..{} panicked: {}",
            self.lo, self.hi, self.message
        )
    }
}

impl std::error::Error for PoolError {}

/// Extracts the human-readable payload from a caught panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fixed-width scoped thread pool. See the [module docs](self).
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool: `DEEPREST_THREADS` when set, otherwise the
    /// number of available hardware threads.
    pub fn global() -> Pool {
        *GLOBAL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// A pool with exactly `threads` workers (`0` is treated as `1`).
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Records one fan-out: how many worker jobs were spawned and the
    /// chunk width they each own. Telemetry-gated so the disabled path
    /// costs a single atomic load.
    fn record_dispatch(workers: usize, chunk: usize) {
        if telemetry::enabled() {
            telemetry::counter("pool.tasks", workers as u64);
            telemetry::gauge("pool.chunk_size", chunk as f64);
        }
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. `f` must depend only on its index argument (and captured
    /// shared state); under that contract the output — including the
    /// floating-point bit patterns of any caller-side ordered reduction —
    /// is identical at every thread count.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_map(n, f) {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Panic-isolating [`Pool::map`]: each worker job runs under
    /// `catch_unwind`, so a panic in `f` (or an injected `pool.worker`
    /// fault) surfaces as a typed [`PoolError`] naming the failed chunk
    /// instead of unwinding through the caller. All workers are still
    /// joined before returning; on success the results are identical to
    /// [`Pool::map`].
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-chunk) worker panic as a [`PoolError`].
    pub fn try_map<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return std::panic::catch_unwind(AssertUnwindSafe(|| {
                fault::maybe_panic("pool.worker");
                (0..n).map(&f).collect::<Vec<T>>()
            }))
            .map_err(|payload| PoolError {
                lo: 0,
                hi: n,
                message: panic_message(payload.as_ref()),
            });
        }
        // Fixed contiguous chunking: worker w owns [w*chunk, (w+1)*chunk).
        let chunk = n.div_ceil(workers);
        Self::record_dispatch(workers, chunk);
        let mut out = Vec::with_capacity(n);
        let mut first_err: Option<PoolError> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let job = scope.spawn(move || {
                        let _busy = telemetry::span("pool.worker_busy");
                        std::panic::catch_unwind(AssertUnwindSafe(|| {
                            fault::maybe_panic("pool.worker");
                            (lo..hi).map(f).collect::<Vec<T>>()
                        }))
                        .map_err(|payload| panic_message(payload.as_ref()))
                    });
                    (lo, hi, job)
                })
                .collect();
            for (lo, hi, handle) in handles {
                // The closure catches its own panics, so join() only fails
                // on aborts; fold that into the same typed error.
                let joined = handle
                    .join()
                    .unwrap_or_else(|payload| Err(panic_message(payload.as_ref())));
                match joined {
                    Ok(chunk_out) => out.extend(chunk_out),
                    Err(message) if first_err.is_none() => {
                        first_err = Some(PoolError { lo, hi, message });
                    }
                    Err(_) => {}
                }
            }
        });
        match first_err {
            None => Ok(out),
            Some(err) => Err(err),
        }
    }

    /// Like [`Pool::map`] for side-effecting jobs with no result.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.map(n, f);
    }

    /// Like [`Pool::map`], but each worker first builds a reusable scratch
    /// state with `init` (e.g. a tape arena) and threads it through every
    /// index of its chunk. `f` must produce the same result for an index
    /// regardless of the state's history — reset scratch state at the top
    /// of `f` — so results stay thread-count invariant.
    pub fn map_reuse<T, S, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            fault::maybe_panic("pool.worker");
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        let chunk = n.div_ceil(workers);
        Self::record_dispatch(workers, chunk);
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (init, f) = (&init, &f);
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let _busy = telemetry::span("pool.worker_busy");
                        fault::maybe_panic("pool.worker");
                        let mut state = init();
                        (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                    })
                })
                .collect();
            for handle in handles {
                // Re-raise with the original payload so callers that do
                // contain panics (serve's step isolation) see the real
                // message, not a generic join error.
                out.extend(
                    handle
                        .join()
                        .unwrap_or_else(|p| std::panic::resume_unwind(p)),
                );
            }
        });
        out
    }

    /// Applies `f` to every element of `items` in place, splitting the slice
    /// into contiguous chunks across the pool. Each element is visited
    /// exactly once with its global index; since elements are disjoint, the
    /// result is identical at any thread count.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            fault::maybe_panic("pool.worker");
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        Self::record_dispatch(n.div_ceil(chunk), chunk);
        std::thread::scope(|scope| {
            for (w, slice) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    let _busy = telemetry::span("pool.worker_busy");
                    fault::maybe_panic("pool.worker");
                    for (j, item) in slice.iter_mut().enumerate() {
                        f(w * chunk + j, item);
                    }
                });
            }
        });
    }
}

fn default_threads() -> usize {
    match std::env::var("DEEPREST_THREADS") {
        Ok(v) => parse_threads(&v).unwrap_or_else(available),
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let pool = Pool::with_threads(4);
        let out = pool.map(103, |i| i * i);
        assert_eq!(out.len(), 103);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = Pool::with_threads(1).map(37, |i| (i as f32).sin());
        for threads in [2, 3, 8, 64] {
            let parallel = Pool::with_threads(threads).map(37, |i| (i as f32).sin());
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_ranges() {
        let pool = Pool::with_threads(8);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("auto"), None);
    }

    #[test]
    fn map_reuse_matches_map_at_any_width() {
        let expected: Vec<usize> = (0..50).map(|i| i * 3).collect();
        for threads in [1, 2, 7] {
            let out = Pool::with_threads(threads).map_reuse(50, Vec::<usize>::new, |scratch, i| {
                scratch.clear();
                scratch.extend(0..3);
                scratch.iter().sum::<usize>() * i
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_mut_updates_disjoint_elements() {
        let mut items: Vec<usize> = (0..101).collect();
        Pool::with_threads(4).for_each_mut(&mut items, |i, v| *v += i);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn try_map_matches_map_on_success() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.try_map(23, |i| i * 2), Ok(pool.map(23, |i| i * 2)));
        }
    }

    #[test]
    fn try_map_contains_worker_panics() {
        for threads in [1, 4] {
            let err = Pool::with_threads(threads)
                .try_map(16, |i| {
                    if i == 9 {
                        panic!("poisoned job {i}");
                    }
                    i
                })
                .expect_err("panicking job must surface as PoolError");
            assert!(err.message.contains("poisoned job 9"), "{err}");
            assert!((err.lo..err.hi).contains(&9), "{err}");
        }
    }

    #[test]
    fn try_map_contains_injected_worker_faults() {
        let plan = std::sync::Arc::new(deeprest_fault::FaultPlan::new(0).once("pool.worker", 0));
        deeprest_fault::with_plan(plan, || {
            let err = Pool::with_threads(1)
                .try_map(8, |i| i)
                .expect_err("armed pool.worker must fail the call");
            assert!(err.message.contains("injected panic"), "{err}");
            // The fault window has passed: the pool serves again.
            assert_eq!(Pool::with_threads(1).try_map(8, |i| i).unwrap().len(), 8);
        });
    }

    #[test]
    fn for_each_visits_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        Pool::with_threads(3).for_each(100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }
}
