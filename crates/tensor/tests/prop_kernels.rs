//! Property-based proof of the kernel layer's bit-identity contract.
//!
//! Every dispatch path of the lane-blocked kernels — portable
//! autovectorized, explicit AVX2, and the zero-skipping sparse path — must
//! produce *identical bits* for the same finite operands, across randomized
//! shapes including ragged tails (`len % LANES != 0`) and zero-laden inputs
//! (both `+0.0` and `-0.0`). This is what lets the GEMV/GEMM dispatchers
//! pick a path per call without ever perturbing training, and what keeps
//! `crates/core/tests/determinism.rs` honest on AVX2 hardware.

use deeprest_tensor::kernel::{
    self, dot_avx2, dot_portable, dot_sparse, gemm_batch_into, gemm_into, gemm_nt_acc_into,
    gemm_nt_into, gemm_tn_into, gemv_batch_into, gemv_into, gemv_t_acc_into, gemv_t_into,
};
use deeprest_tensor::Tensor;
use proptest::prelude::*;

/// Finite values with a heavy dose of exact zeros of both signs, so the
/// sparse skip path and the signed-zero argument are exercised constantly.
fn zero_laden() -> impl Strategy<Value = f32> {
    prop_oneof![Just(0.0f32), Just(-0.0f32), Just(0.0f32), -4.0f32..4.0,]
}

/// Same-length operand pairs with lengths sweeping well past several
/// `LANES` boundaries, tails included.
fn operand_pairs() -> impl Strategy<Value = Vec<(f32, f32)>> {
    proptest::collection::vec((zero_laden(), zero_laden()), 0..=70usize)
}

fn split(pairs: Vec<(f32, f32)>) -> (Vec<f32>, Vec<f32>) {
    pairs.into_iter().unzip()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn avx2_dot_is_bit_identical_to_portable(pairs in operand_pairs()) {
        let (a, b) = split(pairs);
        let want = dot_portable(&a, &b);
        if let Some(got) = dot_avx2(&a, &b) {
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "len {}: avx2 {} vs portable {}", a.len(), got, want
            );
        }
        // The public dispatcher must agree with whichever path it picked.
        prop_assert_eq!(kernel::dot(&a, &b).to_bits(), want.to_bits());
    }

    #[test]
    fn sparse_dot_is_bit_identical_to_portable(pairs in operand_pairs()) {
        let (a, b) = split(pairs);
        prop_assert_eq!(
            dot_sparse(&a, &b).to_bits(),
            dot_portable(&a, &b).to_bits(),
            "len {}", a.len()
        );
    }

    #[test]
    fn gemv_dispatch_never_changes_bits(
        rows in 1usize..9,
        cols in 1usize..41,
        seed in proptest::collection::vec(zero_laden(), 41 * 9 + 41),
    ) {
        // Carve the matrix and vector out of one generated pool so the
        // shapes stay independent of the value stream.
        let a: Vec<f32> = seed[..rows * cols].to_vec();
        let x: Vec<f32> = seed[seed.len() - cols..].to_vec();
        let mut out = vec![0.0f32; rows];
        gemv_into(&mut out, &a, rows, cols, &x);
        for (i, (o, row)) in out.iter().zip(a.chunks_exact(cols)).enumerate() {
            prop_assert_eq!(
                o.to_bits(),
                dot_portable(row, &x).to_bits(),
                "row {} of ({}, {})", i, rows, cols
            );
        }
    }

    #[test]
    fn gemm_nt_matches_gemm_on_materialized_transpose(
        m in 1usize..7,
        k in 1usize..19,
        n in 1usize..7,
        seed in proptest::collection::vec(zero_laden(), 7 * 19 + 19 * 7),
    ) {
        let a: Vec<f32> = seed[..m * k].to_vec();
        let b: Vec<f32> = seed[seed.len() - n * k..].to_vec(); // (n, k)
        let bt = Tensor::from_vec(n, k, b.clone()).transpose(); // (k, n)
        let mut direct = vec![0.0f32; m * n];
        gemm_nt_into(&mut direct, &a, m, k, &b, n);
        let mut via_t = vec![0.0f32; m * n];
        gemm_into(&mut via_t, &a, m, k, bt.data(), n);
        prop_assert_eq!(
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            via_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "({}, {}, {})", m, k, n
        );
    }

    #[test]
    fn gemv_t_matches_per_column_dot(
        k in 1usize..25,
        m in 1usize..35,
        seed in proptest::collection::vec(zero_laden(), 25 * 35 + 25),
    ) {
        let a: Vec<f32> = seed[..k * m].to_vec(); // (k, m)
        let x: Vec<f32> = seed[seed.len() - k..].to_vec();
        let mut out = vec![0.0f32; m];
        gemv_t_into(&mut out, &a, k, m, &x);
        for i in 0..m {
            let col: Vec<f32> = (0..k).map(|kk| a[kk * m + i]).collect();
            prop_assert_eq!(
                out[i].to_bits(),
                dot_portable(&col, &x).to_bits(),
                "({}, {}) at {}", k, m, i
            );
        }
        // The gemm_tn entry point with n == 1 must dispatch here bit-exactly.
        let mut via_tn = vec![0.0f32; m];
        gemm_tn_into(&mut via_tn, &a, k, m, &x, 1);
        prop_assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            via_tn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gemv_batch_matches_unbatched_bits(
        rows in 1usize..7,
        cols in 1usize..25,
        batch in 1usize..6,
        seed in proptest::collection::vec(zero_laden(), 6 * (7 * 25 + 25)),
    ) {
        let mat = rows * cols;
        let a: Vec<f32> = seed[..batch * mat].to_vec();
        let x: Vec<f32> = seed[seed.len() - batch * cols..].to_vec();
        let mut batched = vec![0.0f32; batch * rows];
        gemv_batch_into(&mut batched, &a, rows, cols, &x, batch);
        for i in 0..batch {
            let mut single = vec![0.0f32; rows];
            gemv_into(
                &mut single,
                &a[i * mat..(i + 1) * mat],
                rows,
                cols,
                &x[i * cols..(i + 1) * cols],
            );
            prop_assert_eq!(
                batched[i * rows..(i + 1) * rows]
                    .iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "item {} of ({}, {}, {})", i, rows, cols, batch
            );
        }
    }

    #[test]
    fn gemm_batch_matches_unbatched_bits(
        m in 1usize..5,
        k in 1usize..9,
        n in 1usize..5,
        batch in 1usize..4,
        seed in proptest::collection::vec(zero_laden(), 4 * (5 * 9 + 9 * 5)),
    ) {
        let a: Vec<f32> = seed[..batch * m * k].to_vec();
        let b: Vec<f32> = seed[seed.len() - batch * k * n..].to_vec();
        let mut batched = vec![0.0f32; batch * m * n];
        gemm_batch_into(&mut batched, &a, m, k, &b, n, batch);
        for i in 0..batch {
            let mut single = vec![0.0f32; m * n];
            gemm_into(
                &mut single,
                &a[i * m * k..(i + 1) * m * k],
                m,
                k,
                &b[i * k * n..(i + 1) * k * n],
                n,
            );
            prop_assert_eq!(
                batched[i * m * n..(i + 1) * m * n]
                    .iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "item {} of ({}, {}, {}, {})", i, m, k, n, batch
            );
        }
    }

    #[test]
    fn gemv_t_acc_matches_set_then_add(
        k in 1usize..25,
        m in 1usize..35,
        seed in proptest::collection::vec(zero_laden(), 25 * 35 + 25 + 35),
    ) {
        let a: Vec<f32> = seed[..k * m].to_vec(); // (k, m)
        let x: Vec<f32> = seed[k * m..k * m + k].to_vec();
        let prior: Vec<f32> = seed[seed.len() - m..].to_vec();
        let mut set = vec![0.0f32; m];
        gemv_t_into(&mut set, &a, k, m, &x);
        let want: Vec<u32> = prior
            .iter()
            .zip(set.iter())
            .map(|(&p, &v)| (p + v).to_bits())
            .collect();
        let mut acc = prior;
        gemv_t_acc_into(&mut acc, &a, k, m, &x);
        prop_assert_eq!(
            acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want,
            "({}, {})", k, m
        );
    }

    #[test]
    fn gemm_nt_acc_matches_set_then_add(
        m in 1usize..7,
        k in 1usize..19,
        n in 1usize..7,
        seed in proptest::collection::vec(zero_laden(), 7 * 19 + 19 * 7 + 7 * 7),
    ) {
        let a: Vec<f32> = seed[..m * k].to_vec();
        let b: Vec<f32> = seed[m * k..m * k + n * k].to_vec(); // (n, k)
        let prior: Vec<f32> = seed[seed.len() - m * n..].to_vec();
        let mut set = vec![0.0f32; m * n];
        gemm_nt_into(&mut set, &a, m, k, &b, n);
        let want: Vec<u32> = prior
            .iter()
            .zip(set.iter())
            .map(|(&p, &v)| (p + v).to_bits())
            .collect();
        let mut acc = prior;
        gemm_nt_acc_into(&mut acc, &a, m, k, &b, n);
        prop_assert_eq!(
            acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want,
            "({}, {}, {})", m, k, n
        );
    }

    #[test]
    fn gemm_tn_matches_gemm_on_materialized_transpose(
        m in 1usize..7,
        k in 1usize..19,
        n in 1usize..7,
        seed in proptest::collection::vec(zero_laden(), 19 * 7 + 19 * 7),
    ) {
        let a: Vec<f32> = seed[..k * m].to_vec(); // (k, m)
        let b: Vec<f32> = seed[seed.len() - k * n..].to_vec(); // (k, n)
        let at = Tensor::from_vec(k, m, a.clone()).transpose(); // (m, k)
        let mut direct = vec![0.0f32; m * n];
        gemm_tn_into(&mut direct, &a, k, m, &b, n);
        let mut via_t = vec![0.0f32; m * n];
        gemm_into(&mut via_t, at.data(), m, k, &b, n);
        prop_assert_eq!(
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            via_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "({}, {}, {})", m, k, n
        );
    }
}
