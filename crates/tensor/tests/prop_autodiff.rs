//! Property-based validation of the autodiff engine: analytic gradients of
//! randomly generated computation graphs must match central finite
//! differences, and the pinball loss must recover empirical quantiles.

use deeprest_tensor::{Graph, ParamStore, Tensor};
use proptest::prelude::*;

fn small_value() -> impl Strategy<Value = f32> {
    // Keep magnitudes moderate so finite differences stay well-conditioned.
    (-1.5f32..1.5).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_value(), len)
}

/// Builds `loss = mean((tanh(W·x) ⊙ σ(U·x) + 0.5·x)²)` — exercising matmul,
/// activations, Hadamard, scaling and reductions in one composite.
fn composite_loss(g: &mut Graph, store: &ParamStore, ids: &[deeprest_tensor::ParamId; 3]) -> f32 {
    let w = g.param(store, ids[0]);
    let u = g.param(store, ids[1]);
    let x = g.param(store, ids[2]);
    let wx = g.matmul(w, x);
    let th = g.tanh(wx);
    let ux = g.matmul(u, x);
    let sg = g.sigmoid(ux);
    let prod = g.mul(th, sg);
    let half_x = g.scale(x, 0.5);
    let s = g.add(prod, half_x);
    let sq = g.square(s);
    let loss = g.mean_all(sq);
    let v = g.value(loss).data()[0];
    g.backward(loss, &mut store.clone());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn composite_gradients_match_finite_differences(
        w in vec_of(9),
        u in vec_of(9),
        x in vec_of(3),
    ) {
        let mut store = ParamStore::new();
        let ids = [
            store.add("w", Tensor::from_vec(3, 3, w)),
            store.add("u", Tensor::from_vec(3, 3, u)),
            store.add("x", Tensor::vector(x)),
        ];

        // Analytic gradients.
        let mut g = Graph::new();
        let wv = g.param(&store, ids[0]);
        let uv = g.param(&store, ids[1]);
        let xv = g.param(&store, ids[2]);
        let wx = g.matmul(wv, xv);
        let th = g.tanh(wx);
        let ux = g.matmul(uv, xv);
        let sg = g.sigmoid(ux);
        let prod = g.mul(th, sg);
        let half_x = g.scale(xv, 0.5);
        let s = g.add(prod, half_x);
        let sq = g.square(s);
        let loss = g.mean_all(sq);
        g.backward(loss, &mut store);

        // Numeric gradients via central differences on every parameter.
        let eps = 1e-3f32;
        for &id in &ids {
            let len = store.value(id).len();
            for i in 0..len {
                let mut plus = store.clone();
                plus.value_mut(id).data_mut()[i] += eps;
                let mut minus = store.clone();
                minus.value_mut(id).data_mut()[i] -= eps;
                let f = |s: &ParamStore| {
                    let mut g = Graph::new();
                    composite_loss(&mut g, s, &ids)
                };
                let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
                let analytic = store.grad(id).data()[i];
                prop_assert!(
                    (analytic - numeric).abs() <= 2e-2 * (1.0 + numeric.abs()),
                    "param {} elem {i}: analytic {analytic} vs numeric {numeric}",
                    store.name(id)
                );
            }
        }
    }

    #[test]
    fn pinball_sgd_recovers_the_requested_quantile(
        samples in proptest::collection::vec(0.0f32..1.0, 60..120),
        q_idx in 0usize..3,
    ) {
        let q = [0.25f32, 0.5, 0.9][q_idx];
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::scalar(0.5));
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let pv = g.param(&store, p);
            let mut terms = Vec::new();
            for &s in &samples {
                terms.push(g.pinball(pv, Tensor::scalar(s), &[q]));
            }
            let total = g.add_n(&terms);
            let loss = g.scale(total, 1.0 / samples.len() as f32);
            g.backward(loss, &mut store);
            let grad = store.grad(p).data()[0];
            store.value_mut(p).data_mut()[0] -= 0.02 * grad;
        }
        let estimate = store.value(p).data()[0];
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let target = sorted[((q as f64) * (sorted.len() - 1) as f64) as usize];
        prop_assert!(
            (estimate - target).abs() < 0.15,
            "q={q}: estimate {estimate} vs empirical quantile {target}"
        );
    }

    #[test]
    fn matmul_matches_reference_implementation(
        a in vec_of(12),
        b in vec_of(20),
    ) {
        let ta = Tensor::from_vec(3, 4, a.clone());
        let tb = Tensor::from_vec(4, 5, b.clone());
        let c = ta.matmul(&tb);
        for i in 0..3 {
            for j in 0..5 {
                let expected: f32 = (0..4).map(|k| a[i * 4 + k] * b[k * 5 + j]).sum();
                prop_assert!((c.get(i, j) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transpose_is_involutive_and_preserves_norm(data in vec_of(12)) {
        let t = Tensor::from_vec(3, 4, data);
        prop_assert_eq!(t.transpose().transpose(), t.clone());
        prop_assert!((t.transpose().norm() - t.norm()).abs() < 1e-5);
    }
}
