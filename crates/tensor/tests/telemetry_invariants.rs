//! Telemetry-backed invariants of the execution engine: behavior that used
//! to be invisible (arena reuse, pool fan-out) asserted through the
//! in-memory sink.

use std::sync::Arc;

use deeprest_telemetry::{self as telemetry, MemorySink};
use deeprest_tensor::{Graph, ParamStore, Pool, Tensor};

#[test]
fn pool_dispatch_counts_workers_and_chunks() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // 8 items over 4 threads: 4 worker jobs of chunk 2.
        let out = Pool::with_threads(4).map(8, |i| i * 2);
        assert_eq!(out.len(), 8);
    });
    assert_eq!(sink.counter("pool.tasks"), 4);
    assert_eq!(sink.gauges("pool.chunk_size"), vec![2.0]);
    assert_eq!(sink.span_count("pool.worker_busy"), 4);
}

#[test]
fn serial_pool_dispatches_nothing() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        let out = Pool::with_threads(1).map(8, |i| i + 1);
        assert_eq!(out.len(), 8);
    });
    // The serial fast path spawns no workers, so no fan-out events.
    assert_eq!(sink.counter("pool.tasks"), 0);
    assert_eq!(sink.span_count("pool.worker_busy"), 0);
}

#[test]
fn map_reuse_dispatch_matches_ceil_rule() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // 12 items over 3 threads: 3 worker jobs of chunk 4.
        let out = Pool::with_threads(3).map_reuse(
            12,
            || 0usize,
            |s, i| {
                *s += 1;
                i
            },
        );
        assert_eq!(out.len(), 12);
    });
    assert_eq!(sink.counter("pool.tasks"), 3);
    assert_eq!(sink.gauges("pool.chunk_size"), vec![4.0]);
}

/// Builds a small forward pass on `g` and returns the scalar loss var.
fn forward(
    g: &mut Graph,
    store: &ParamStore,
    id: deeprest_tensor::ParamId,
) -> deeprest_tensor::Var {
    let w = g.param(store, id);
    let x = g.constant(Tensor::vector(vec![0.4, -0.7]));
    let prod = g.mul(w, x);
    let sq = g.square(prod);
    g.sum_all(sq)
}

#[test]
fn reused_arena_never_regrows() {
    let mut store = ParamStore::new();
    let id = store.add("w", Tensor::vector(vec![1.0, -2.0]));

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // Pre-size the arena like the training loop does, then run many
        // forward/backward passes through `reset`.
        let mut g = Graph::with_capacity(16);
        for _ in 0..10 {
            g.reset();
            let loss = forward(&mut g, &store, id);
            g.backward(loss, &mut store);
        }
    });
    assert_eq!(
        sink.counter("graph.arena_grow"),
        0,
        "a pre-sized, reset arena must never reallocate"
    );
    assert_eq!(sink.counter("graph.arena_reuse"), 10);
    assert_eq!(sink.counter("graph.backward.runs"), 10);
    // Every pass records the same tape length.
    let nodes = sink.gauges("graph.backward.tape_nodes");
    assert_eq!(nodes.len(), 10);
    assert!(nodes.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn undersized_arena_growth_is_visible() {
    let mut store = ParamStore::new();
    let id = store.add("w", Tensor::vector(vec![1.0, -2.0]));

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // Zero-capacity arena: the first pass must grow at least once.
        let mut g = Graph::new();
        let loss = forward(&mut g, &store, id);
        g.backward(loss, &mut store);
    });
    assert!(sink.counter("graph.arena_grow") >= 1);
}
