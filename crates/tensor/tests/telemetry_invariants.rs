//! Telemetry-backed invariants of the execution engine: behavior that used
//! to be invisible (arena reuse, pool fan-out) asserted through the
//! in-memory sink.

use std::sync::Arc;

use deeprest_telemetry::{self as telemetry, MemorySink};
use deeprest_tensor::{Graph, ParamStore, Pool, Tensor};

#[test]
fn pool_dispatch_counts_workers_and_chunks() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // 8 items over 4 threads: 4 worker jobs of chunk 2.
        let out = Pool::with_threads(4).map(8, |i| i * 2);
        assert_eq!(out.len(), 8);
    });
    assert_eq!(sink.counter("pool.tasks"), 4);
    assert_eq!(sink.gauges("pool.chunk_size"), vec![2.0]);
    assert_eq!(sink.span_count("pool.worker_busy"), 4);
}

#[test]
fn serial_pool_dispatches_nothing() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        let out = Pool::with_threads(1).map(8, |i| i + 1);
        assert_eq!(out.len(), 8);
    });
    // The serial fast path spawns no workers, so no fan-out events.
    assert_eq!(sink.counter("pool.tasks"), 0);
    assert_eq!(sink.span_count("pool.worker_busy"), 0);
}

#[test]
fn map_reuse_dispatch_matches_ceil_rule() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // 12 items over 3 threads: 3 worker jobs of chunk 4.
        let out = Pool::with_threads(3).map_reuse(
            12,
            || 0usize,
            |s, i| {
                *s += 1;
                i
            },
        );
        assert_eq!(out.len(), 12);
    });
    assert_eq!(sink.counter("pool.tasks"), 3);
    assert_eq!(sink.gauges("pool.chunk_size"), vec![4.0]);
}

/// Builds a small forward pass on `g` and returns the scalar loss var.
fn forward(
    g: &mut Graph,
    store: &ParamStore,
    id: deeprest_tensor::ParamId,
) -> deeprest_tensor::Var {
    let w = g.param(store, id);
    let x = g.constant(Tensor::vector(vec![0.4, -0.7]));
    let prod = g.mul(w, x);
    let sq = g.square(prod);
    g.sum_all(sq)
}

#[test]
fn reused_arena_never_regrows() {
    let mut store = ParamStore::new();
    let id = store.add("w", Tensor::vector(vec![1.0, -2.0]));

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // Pre-size the arena like the training loop does, then run many
        // forward/backward passes through `reset`.
        let mut g = Graph::with_capacity(16);
        for _ in 0..10 {
            g.reset();
            let loss = forward(&mut g, &store, id);
            g.backward(loss, &mut store);
        }
    });
    assert_eq!(
        sink.counter("graph.arena_grow"),
        0,
        "a pre-sized, reset arena must never reallocate"
    );
    assert_eq!(sink.counter("graph.arena_reuse"), 10);
    assert_eq!(sink.counter("graph.backward.runs"), 10);
    // Every pass records the same tape length.
    let nodes = sink.gauges("graph.backward.tape_nodes");
    assert_eq!(nodes.len(), 10);
    assert!(nodes.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn matmul_dispatch_counters_split_gemv_from_gemm() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        let a = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        let x = Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(4, 2, (0..8).map(|i| i as f32 * 0.5).collect());
        let _ = a.matmul(&x); // (3,4)·(4,1): the GEMV fast path
        let _ = a.matmul(&b); // (3,4)·(4,2): general GEMM
        let row = Tensor::from_vec(1, 4, vec![0.5, 0.0, -0.5, 1.0]);
        let _ = a.matmul_nt(&row); // (3,4)·(1,4)^T: GEMV-shaped
        let g = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let _ = a.matmul_tn(&g); // Aᵀ·g with g a column: GEMV-shaped
        let _ = g.matmul_nt(&x); // outer product (3,1)·(4,1)^T: GEMM-shaped
    });
    assert_eq!(sink.counter("kernel.gemv"), 3);
    assert_eq!(sink.counter("kernel.gemm"), 2);
}

#[test]
fn sparse_gemv_dispatch_is_counted() {
    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        let a = Tensor::from_vec(2, 32, (0..64).map(|i| (i as f32 * 0.1).sin()).collect());
        // Both nonzeros in the first 8-wide chunk: 3/4 of the aligned
        // chunks are entirely zero, which meets the sparse threshold.
        let mut xv = vec![0.0f32; 32];
        xv[0] = 1.0;
        xv[5] = -2.0;
        let x = Tensor::vector(xv);
        let _ = a.matmul(&x);
        // A dense vector of the same shape must not take the sparse path.
        let dense = Tensor::vector((0..32).map(|i| i as f32 + 1.0).collect());
        let _ = a.matmul(&dense);
    });
    assert_eq!(sink.counter("kernel.sparse_hits"), 1);
    assert_eq!(sink.counter("kernel.gemv"), 2);
}

#[test]
fn steady_state_graph_rebuild_performs_zero_kernel_allocations() {
    let mut store = ParamStore::new();
    let id = store.add("w", Tensor::vector(vec![1.0, -2.0]));

    // Warm up outside the sink: the first passes populate the graph's
    // scratch pool and let the LIFO buffer-site mapping settle.
    let mut g = Graph::with_capacity(16);
    for _ in 0..3 {
        g.reset();
        let loss = forward(&mut g, &store, id);
        g.backward(loss, &mut store);
    }

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        for _ in 0..10 {
            g.reset();
            let loss = forward(&mut g, &store, id);
            g.backward(loss, &mut store);
        }
    });
    assert_eq!(
        sink.counter("kernel.alloc"),
        0,
        "a warmed-up rebuild loop must draw every buffer from the pool"
    );
    assert!(sink.counter("kernel.scratch_reuse") > 0);
}

#[test]
fn undersized_arena_growth_is_visible() {
    let mut store = ParamStore::new();
    let id = store.add("w", Tensor::vector(vec![1.0, -2.0]));

    let sink = Arc::new(MemorySink::new());
    telemetry::with_sink(sink.clone(), || {
        // Zero-capacity arena: the first pass must grow at least once.
        let mut g = Graph::new();
        let loss = forward(&mut g, &store, id);
        g.backward(loss, &mut store);
    });
    assert!(sink.counter("graph.arena_grow") >= 1);
}
