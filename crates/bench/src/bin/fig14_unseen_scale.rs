//! Standalone runner; see `deeprest_bench::experiments::fig14_unseen_scale`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig14_unseen_scale::run(&args);
}
