//! Standalone runner; see `deeprest_bench::experiments::ablations`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::ablations::run(&args);
}
