//! Compares two `BENCH_perf.json` snapshots and fails on regressions.
//!
//! CI runs the Criterion kernel sweeps in quick mode (`BENCH_FILTER`
//! restricted to the kernel groups, `BENCH_PERF_OUT` pointed at a scratch
//! file) and then invokes this guard against the committed baseline:
//!
//! ```text
//! bench_guard <baseline.json> <current.json> [--threshold PCT] [--filter SUB]...
//! ```
//!
//! Only benchmark ids present in **both** files are compared (a quick-mode
//! run measures a subset of the committed baseline). A benchmark regresses
//! when its current time exceeds the baseline by more than `--threshold`
//! percent (default 25). `--stat mean|min` picks the compared statistic;
//! the default is `min_ns` — the minimum over samples is what the kernel
//! can do when the machine isn't interfering, so it is far less flappy on
//! shared CI runners than the mean. `--filter` restricts the comparison
//! to ids containing one of the given substrings; repeat the flag for
//! several groups. Exit code 1 on any regression, 2 on usage/parse errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde_json::Value;

/// `id -> <stat>_ns` for every benchmark in a `BENCH_perf.json` document.
fn load(path: &str, stat: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let benches = doc
        .as_object()
        .and_then(|m| m.get("benchmarks"))
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no \"benchmarks\" array"))?;
    let mut out = BTreeMap::new();
    for entry in benches {
        let entry = entry
            .as_object()
            .ok_or_else(|| format!("{path}: non-object benchmark entry"))?;
        let id = entry
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: benchmark without string \"id\""))?;
        let field = format!("{stat}_ns");
        let ns = entry
            .get(&field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: {id} lacks numeric \"{field}\""))?;
        out.insert(id.to_string(), ns);
    }
    Ok(out)
}

struct Args {
    baseline: String,
    current: String,
    threshold_pct: f64,
    stat: String,
    filters: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold_pct = 25.0;
    let mut stat = "min".to_string();
    let mut filters = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                threshold_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --threshold {v}"))?;
            }
            "--stat" => {
                let v = argv.next().ok_or("--stat needs a value")?;
                if v != "mean" && v != "min" {
                    return Err(format!("bad --stat {v} (expected mean or min)"));
                }
                stat = v;
            }
            "--filter" => filters.push(argv.next().ok_or("--filter needs a value")?),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("usage: bench_guard <baseline.json> <current.json> \
             [--threshold PCT] [--stat mean|min] [--filter SUB]..."
            .into());
    }
    let mut it = positional.into_iter();
    Ok(Args {
        baseline: it.next().unwrap(),
        current: it.next().unwrap(),
        threshold_pct,
        stat,
        filters,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (
        load(&args.baseline, &args.stat),
        load(&args.current, &args.stat),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let wanted =
        |id: &str| args.filters.is_empty() || args.filters.iter().any(|f| id.contains(f.as_str()));
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (id, &base) in baseline.iter().filter(|(id, _)| wanted(id)) {
        let Some(&cur) = current.get(id) else {
            continue; // quick-mode runs measure a subset; skip the rest
        };
        compared += 1;
        let delta_pct = (cur - base) / base * 100.0;
        let status = if delta_pct > args.threshold_pct {
            regressions += 1;
            "REGRESSED"
        } else if delta_pct < -args.threshold_pct {
            "improved"
        } else {
            "ok"
        };
        println!("{status:>9}  {id:<44} {base:>12.1} ns -> {cur:>12.1} ns  ({delta_pct:+.1}%)");
    }
    if compared == 0 {
        eprintln!("bench_guard: no overlapping benchmark ids to compare");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        eprintln!(
            "bench_guard: {regressions}/{compared} benchmarks regressed beyond {:.0}%",
            args.threshold_pct
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_guard: {compared} benchmarks within {:.0}%",
        args.threshold_pct
    );
    ExitCode::SUCCESS
}
