//! Standalone runner; see `deeprest_bench::experiments::fig18_shape_examples`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig18_shape_examples::run(&args);
}
