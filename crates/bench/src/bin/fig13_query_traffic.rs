//! Standalone runner; see `deeprest_bench::experiments::fig13_query_traffic`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig13_query_traffic::run(&args);
}
