//! Standalone runner; see `deeprest_bench::experiments::fig12_heatmap`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig12_heatmap::run(&args);
}
