//! Standalone runner; see `deeprest_bench::experiments::fig09_learning_traffic`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig09_learning_traffic::run(&args);
}
