//! Standalone runner; see `deeprest_bench::experiments::transfer`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::transfer::run(&args);
}
