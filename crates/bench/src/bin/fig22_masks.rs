//! Standalone runner; see `deeprest_bench::experiments::fig22_masks`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig22_masks::run(&args);
}
