//! `deeprest` — operator-facing sizing and diagnostics CLI.
//!
//! # `deeprest capacity`
//!
//! Answers the provisioning question for online serving: *how many experts
//! can one box advance at the scrape-window rate?* For each expert count it
//! trains a synthetic multi-component model, then times the batched
//! [`StreamPredictor`](deeprest_core::stream::StreamPredictor) against the
//! tape-based per-expert baseline on identical window features:
//!
//! ```text
//! deeprest capacity                       # full sweep: 16, 64, 256 experts
//! deeprest capacity --quick               # CI smoke: 64 experts, tiny model
//! deeprest capacity --experts 32,128     # custom sweep
//! deeprest capacity --assert-speedup 1.0  # exit 1 if batched < 1.0x baseline
//! deeprest capacity --json                # machine-readable rows
//! ```
//!
//! Reported per expert count:
//!
//! * `batched w/s`, `per-expert w/s` — full-model window steps per second
//!   for each path, and their ratio (`speedup`);
//! * `experts/core` — experts one core sustains at the scrape-window rate:
//!   `experts × window_secs / (step_secs × threads)`;
//! * `KiB/expert` — resident packed weights + carried state per expert
//!   (gate slab, attention/head/skip packs, hidden vectors).
//!
//! # `deeprest scale`
//!
//! Replays the closed-loop autoscaling scenarios, reporting SLO-violation
//! windows and provisioned cost for the proactive what-if policy against
//! the reactive threshold baseline:
//!
//! ```text
//! deeprest scale                              # all four scenarios
//! deeprest scale --scenario surge             # one scenario
//! deeprest scale --quick                      # surge + flash-crowd (CI smoke)
//! deeprest scale --assert-better-than-reactive  # exit 1 unless proactive wins
//! deeprest scale --json                       # machine-readable rows
//! ```
//!
//! The assertion is the repo's headline autoscaling claim: on the
//! announced surge and the flash crowd the proactive policy must have
//! strictly fewer violation windows at equal-or-lower cost; on the
//! remaining scenarios it must never violate more.

use std::time::Instant;

use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_scale::{
    run_proactive, run_reactive, ScaleLoopConfig, ScaleReport, Scenario, ScenarioKind,
};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::{Interner, SpanNode, Trace};

struct CapacityArgs {
    /// Expert counts to sweep.
    experts: Vec<usize>,
    /// Tiny model + short timing loops (the CI smoke configuration).
    quick: bool,
    /// Exit non-zero when batched/per-expert falls below this ratio.
    assert_speedup: Option<f64>,
    /// Emit one JSON object per row instead of the table.
    json: bool,
    /// Worker threads (defaults to `DEEPREST_THREADS` / available cores).
    threads: Option<usize>,
    /// Scrape-window length used for the experts/core figure.
    window_secs: f64,
    /// Co-resident tenants to size for: times a multi-tenant round (every
    /// tenant's predictor advancing one window over shared weights) and
    /// reports how many tenants one core sustains at the window rate.
    tenants: usize,
    seed: u64,
}

impl Default for CapacityArgs {
    fn default() -> Self {
        Self {
            experts: vec![16, 64, 256],
            quick: false,
            assert_speedup: None,
            json: false,
            threads: None,
            window_secs: 30.0,
            tenants: 1,
            seed: 17,
        }
    }
}

impl CapacityArgs {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut experts_given = false;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--experts" => {
                    experts_given = true;
                    out.experts = value("--experts")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--experts comma-separated usize"))
                        .collect();
                }
                "--quick" => out.quick = true,
                "--assert-speedup" => {
                    out.assert_speedup = Some(
                        value("--assert-speedup")
                            .parse()
                            .expect("--assert-speedup f64"),
                    );
                }
                "--json" => out.json = true,
                "--threads" => {
                    out.threads = Some(value("--threads").parse().expect("--threads usize"));
                }
                "--window-secs" => {
                    out.window_secs = value("--window-secs").parse().expect("--window-secs f64");
                }
                "--tenants" => out.tenants = value("--tenants").parse().expect("--tenants usize"),
                "--seed" => out.seed = value("--seed").parse().expect("--seed u64"),
                other => panic!("unknown flag {other}; see `deeprest` docs for usage"),
            }
        }
        if out.quick && !experts_given {
            out.experts = vec![64];
        }
        out
    }
}

/// Synthetic application with `ceil(experts / 2)` components, two metric
/// series (CPU + memory) per component — the last trimmed to CPU only for
/// odd expert counts. Deterministic, so capacity runs are reproducible.
fn dataset(windows: usize, experts: usize) -> (Interner, WindowedTraces, MetricsRegistry) {
    let components = experts.div_ceil(2);
    let drop_last_mem = experts % 2 == 1;
    let mut i = Interner::new();
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut metrics = MetricsRegistry::new();
    for c in 0..components {
        let svc_name = format!("Svc{c}");
        let svc = i.intern(&svc_name);
        let op = i.intern(&format!("op{c}"));
        let api = i.intern(&format!("/api{c}"));
        let mut cpu = TimeSeries::zeros(0);
        let mut mem = TimeSeries::zeros(0);
        for t in 0..windows {
            let count = 2 + (t * (c + 3)) % 9;
            for _ in 0..count {
                traces.windows[t].push(Trace::new(api, SpanNode::leaf(svc, op)));
            }
            cpu.push(1.5 + (0.8 + 0.02 * c as f64) * count as f64);
            mem.push(48.0 + 0.4 * count as f64);
        }
        metrics.insert(MetricKey::new(&svc_name, ResourceKind::Cpu), cpu);
        if !(drop_last_mem && c == components - 1) {
            metrics.insert(MetricKey::new(&svc_name, ResourceKind::Memory), mem);
        }
    }
    (i, traces, metrics)
}

/// Steps `f` over the feature windows (cycling) `steps` times after
/// `warm` warm-up calls; returns achieved window steps per second.
fn windows_per_sec(xs: &[Vec<f32>], warm: usize, steps: usize, mut f: impl FnMut(&[f32])) -> f64 {
    for k in 0..warm {
        f(&xs[k % xs.len()]);
    }
    let start = Instant::now();
    for k in 0..steps {
        f(&xs[k % xs.len()]);
    }
    steps as f64 / start.elapsed().as_secs_f64()
}

struct Row {
    experts: usize,
    shards: usize,
    batched_wps: f64,
    per_expert_wps: f64,
    bytes_per_expert: f64,
    experts_per_core: f64,
    /// Multi-tenant sizing (only with `--tenants N`, N > 1): rounds/sec
    /// where one round advances every tenant's predictor by one window,
    /// and the tenants one core sustains at the window rate.
    tenant_rounds_per_sec: Option<f64>,
    tenants_per_core: Option<f64>,
}

fn capacity_row(args: &CapacityArgs, experts: usize) -> Row {
    let windows = if args.quick { 32 } else { 48 };
    let (i, traces, metrics) = dataset(windows, experts);
    let cfg = DeepRestConfig {
        hidden_dim: if args.quick { 8 } else { 16 },
        epochs: 1,
        subseq_len: 12,
        batch_size: 4,
        threads: args.threads,
        ..DeepRestConfig::default()
    }
    .with_seed(args.seed);
    let (model, _) = DeepRest::fit(&traces, &metrics, &i, cfg);
    assert_eq!(
        model.expert_keys().len(),
        experts,
        "dataset yields the sweep's expert count"
    );
    let xs: Vec<Vec<f32>> = traces
        .windows
        .iter()
        .map(|w| model.window_features(w, &i))
        .collect();

    let (warm, steps) = if args.quick { (8, 40) } else { (16, 200) };
    let mut batched = model.stream_predictor();
    let shards = batched.shard_count();
    let state_bytes = batched.state_bytes();
    let batched_wps = windows_per_sec(&xs, warm, steps, |x| {
        batched.step(x);
    });
    let mut reference = model.per_expert_predictor();
    let per_expert_wps = windows_per_sec(&xs, warm, steps, |x| {
        reference.step(x);
    });

    let threads = model_threads(args);
    let step_secs = 1.0 / batched_wps;

    // Multi-tenant sizing: N co-resident tenants share the trained
    // weights but carry independent hidden state; one round steps them
    // all by one window (the registry's drain pattern).
    let (tenant_rounds_per_sec, tenants_per_core) = if args.tenants > 1 {
        let mut predictors: Vec<_> = (0..args.tenants)
            .map(|_| model.stream_predictor())
            .collect();
        let rps = windows_per_sec(
            &xs,
            warm.div_ceil(args.tenants),
            steps.div_ceil(args.tenants),
            |x| {
                for p in &mut predictors {
                    p.step(x);
                }
            },
        );
        let per_core = rps * args.tenants as f64 * args.window_secs / threads as f64;
        (Some(rps), Some(per_core))
    } else {
        (None, None)
    };

    Row {
        experts,
        shards,
        batched_wps,
        per_expert_wps,
        bytes_per_expert: state_bytes as f64 / experts as f64,
        experts_per_core: experts as f64 * args.window_secs / (step_secs * threads as f64),
        tenant_rounds_per_sec,
        tenants_per_core,
    }
}

/// Worker threads the run is using: the flag, the env var, or all cores —
/// the same resolution order as the tensor pool.
fn model_threads(args: &CapacityArgs) -> usize {
    if let Some(n) = args.threads {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DEEPREST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn run_capacity(raw: Vec<String>) {
    let args = CapacityArgs::parse(raw);
    let mut rows = Vec::new();
    for &e in &args.experts {
        rows.push(capacity_row(&args, e));
    }

    if args.json {
        for r in &rows {
            let tenant_fields = match (r.tenant_rounds_per_sec, r.tenants_per_core) {
                (Some(rps), Some(per_core)) => format!(
                    ",\"tenants\":{},\"tenant_rounds_per_sec\":{rps:.1},\
                     \"tenants_per_core\":{per_core:.1}",
                    args.tenants
                ),
                _ => String::new(),
            };
            println!(
                "{{\"experts\":{},\"shards\":{},\"batched_windows_per_sec\":{:.1},\
                 \"per_expert_windows_per_sec\":{:.1},\"speedup\":{:.3},\
                 \"experts_per_core\":{:.1},\"bytes_per_expert\":{:.1}{tenant_fields}}}",
                r.experts,
                r.shards,
                r.batched_wps,
                r.per_expert_wps,
                r.batched_wps / r.per_expert_wps,
                r.experts_per_core,
                r.bytes_per_expert
            );
        }
    } else {
        println!(
            "deeprest capacity — batched serving throughput ({} threads, {}s windows)",
            model_threads(&args),
            args.window_secs
        );
        println!(
            "{:>8}  {:>6}  {:>12}  {:>14}  {:>7}  {:>12}  {:>10}",
            "experts",
            "shards",
            "batched w/s",
            "per-expert w/s",
            "speedup",
            "experts/core",
            "KiB/expert"
        );
        for r in &rows {
            println!(
                "{:>8}  {:>6}  {:>12.1}  {:>14.1}  {:>6.2}x  {:>12.3e}  {:>10.1}",
                r.experts,
                r.shards,
                r.batched_wps,
                r.per_expert_wps,
                r.batched_wps / r.per_expert_wps,
                r.experts_per_core,
                r.bytes_per_expert / 1024.0
            );
            if let (Some(rps), Some(per_core)) = (r.tenant_rounds_per_sec, r.tenants_per_core) {
                println!(
                    "{:>8}  {} tenants: {:.1} rounds/s, {:.3e} tenants/core",
                    "", args.tenants, rps, per_core
                );
            }
        }
    }

    if let Some(min) = args.assert_speedup {
        for r in &rows {
            let speedup = r.batched_wps / r.per_expert_wps;
            if speedup < min {
                eprintln!(
                    "capacity: FAIL — {} experts: batched is {speedup:.2}x per-expert (< {min}x)",
                    r.experts
                );
                std::process::exit(1);
            }
        }
        println!("capacity: PASS — batched ≥ {min}x per-expert at every expert count");
    }
}

struct ScaleArgs {
    /// Scenarios to replay.
    scenarios: Vec<ScenarioKind>,
    /// Exit non-zero unless proactive beats reactive (strict on surge and
    /// flash-crowd, never-worse elsewhere).
    assert_better: bool,
    /// Emit one JSON object per (scenario, policy) row.
    json: bool,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        Self {
            scenarios: ScenarioKind::all().to_vec(),
            assert_better: false,
            json: false,
        }
    }
}

impl ScaleArgs {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--scenario" => {
                    let name = iter
                        .next()
                        .unwrap_or_else(|| panic!("missing value for --scenario"));
                    if name == "all" {
                        out.scenarios = ScenarioKind::all().to_vec();
                    } else {
                        out.scenarios = vec![ScenarioKind::from_name(&name).unwrap_or_else(|| {
                            panic!(
                                "unknown scenario `{name}` (surge|flash-crowd|diurnal|drift|all)"
                            )
                        })];
                    }
                }
                "--quick" => {
                    // The CI smoke pair: the two scenarios under the
                    // strict better-than-reactive guarantee.
                    out.scenarios = vec![ScenarioKind::Surge, ScenarioKind::FlashCrowd];
                }
                "--assert-better-than-reactive" => out.assert_better = true,
                "--json" => out.json = true,
                other => panic!("unknown flag {other}; see `deeprest` docs for usage"),
            }
        }
        out
    }
}

fn scale_row(args: &ScaleArgs, kind: ScenarioKind, report: &ScaleReport) {
    if args.json {
        let means: Vec<String> = report
            .mean_replicas
            .iter()
            .map(|m| format!("{m:.4}"))
            .collect();
        println!(
            "{{\"scenario\":\"{}\",\"policy\":\"{}\",\"slo_violation_windows\":{},\
             \"provisioned_cost\":{:.6},\"mean_replicas\":[{}],\"estimate_errors\":{}}}",
            kind.name(),
            report.policy,
            report.slo_violation_windows,
            report.provisioned_cost,
            means.join(","),
            report.estimate_errors
        );
    } else {
        let means: Vec<String> = report
            .mean_replicas
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect();
        println!(
            "{:<12}  {:<28}  {:>11}  {:>9.4}  [{}]",
            kind.name(),
            report.policy,
            report.slo_violation_windows,
            report.provisioned_cost,
            means.join(", ")
        );
    }
}

fn run_scale(raw: Vec<String>) {
    let args = ScaleArgs::parse(raw);
    // Every scenario shares the same app and training sweep; train once.
    let model = Scenario::new(ScenarioKind::Surge).train();
    let config = ScaleLoopConfig::default();
    if !args.json {
        println!("deeprest scale — closed-loop proactive vs reactive replay");
        println!(
            "{:<12}  {:<28}  {:>11}  {:>9}  mean replicas",
            "scenario", "policy", "slo windows", "cost"
        );
    }
    let mut failures = Vec::new();
    for &kind in &args.scenarios {
        let scenario = Scenario::new(kind);
        let proactive = run_proactive(&model, &scenario, config)
            .unwrap_or_else(|e| panic!("{}: proactive run failed: {e}", kind.name()));
        let reactive = run_reactive(&model, &scenario, config)
            .unwrap_or_else(|e| panic!("{}: reactive run failed: {e}", kind.name()));
        scale_row(&args, kind, &proactive);
        scale_row(&args, kind, &reactive);
        if args.assert_better {
            let strict = matches!(kind, ScenarioKind::Surge | ScenarioKind::FlashCrowd);
            if strict {
                if proactive.slo_violation_windows >= reactive.slo_violation_windows {
                    failures.push(format!(
                        "{}: proactive {} vs reactive {} violation windows (need strictly fewer)",
                        kind.name(),
                        proactive.slo_violation_windows,
                        reactive.slo_violation_windows
                    ));
                }
                if proactive.provisioned_cost > reactive.provisioned_cost {
                    failures.push(format!(
                        "{}: proactive cost {:.4} vs reactive {:.4} (need equal or lower)",
                        kind.name(),
                        proactive.provisioned_cost,
                        reactive.provisioned_cost
                    ));
                }
            } else if proactive.slo_violation_windows > reactive.slo_violation_windows {
                failures.push(format!(
                    "{}: proactive {} vs reactive {} violation windows (must never be worse)",
                    kind.name(),
                    proactive.slo_violation_windows,
                    reactive.slo_violation_windows
                ));
            }
        }
    }
    if args.assert_better {
        if failures.is_empty() {
            println!("scale: PASS — proactive beats reactive on every replayed scenario");
        } else {
            for f in &failures {
                eprintln!("scale: FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("capacity") => run_capacity(args.collect()),
        Some("scale") => run_scale(args.collect()),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("usage: deeprest capacity [--quick] [--experts N,N,..] [--threads N]");
            eprintln!("                         [--window-secs S] [--assert-speedup R] [--json]");
            eprintln!("       deeprest scale    [--quick] [--scenario NAME|all] [--json]");
            eprintln!("                         [--assert-better-than-reactive]");
            std::process::exit(if std::env::args().len() > 1 { 0 } else { 2 });
        }
        Some(other) => {
            eprintln!("deeprest: unknown subcommand `{other}` (try `deeprest capacity` or `deeprest scale`)");
            std::process::exit(2);
        }
    }
}
