//! Standalone runner; see `deeprest_bench::experiments::fig17_hotel_3x`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig17_hotel_3x::run(&args);
}
