//! Standalone runner; see `deeprest_bench::experiments::table1_synthesizer`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::table1_synthesizer::run(&args);
}
