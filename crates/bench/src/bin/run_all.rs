//! Runs every experiment in paper order, reusing trained contexts where the
//! experiments share a learning phase. This is the one-command regeneration
//! entry point behind EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p deeprest-bench --bin run_all
//! ```

use deeprest_bench::experiments;
use deeprest_bench::{Args, ExpCtx};
use deeprest_telemetry as telemetry;
use deeprest_tensor::Pool;
use deeprest_workload::TrafficShape;

/// Runs one experiment under a `bench.<id>` span, so an enabled JSONL sink
/// yields a per-figure wall-clock manifest.
fn spanned(id: &str, f: impl FnOnce()) {
    let _span = telemetry::span(format!("bench.{id}"));
    f();
}

fn main() {
    let args = Args::parse();
    let started = std::time::Instant::now();
    let threads = args.threads.unwrap_or_else(|| Pool::global().threads());

    // Workload-only figures need no training.
    spanned("fig09", || experiments::fig09_learning_traffic::run(&args));
    spanned("fig13", || experiments::fig13_query_traffic::run(&args));
    spanned("table1", || experiments::table1_synthesizer::run(&args));

    // The three learning phases (social two-peak, social flat for fig16b,
    // hotel for fig17) are independent, so they train concurrently; the
    // experiments themselves still run — and print — in paper order, and
    // every context is bit-identical to a serial run.
    std::thread::scope(|scope| {
        let (flat_task, hotel_task) = if threads > 1 {
            (
                Some(scope.spawn(|| ExpCtx::social_shaped(&args, TrafficShape::Flat))),
                Some(scope.spawn(|| ExpCtx::hotel(&args))),
            )
        } else {
            (None, None)
        };

        // One social-network context serves most experiments.
        println!("\n[training the social-network estimators ...]");
        let ctx = ExpCtx::social(&args);
        println!(
            "[DeepRest: {} experts, feature dim {}, {:.1}s training]",
            ctx.estimators.report.expert_count,
            ctx.estimators.report.feature_dim,
            ctx.estimators.report.train_seconds
        );
        spanned("fig10", || {
            experiments::fig10_compose_dominated::run_with(&args, &ctx)
        });
        spanned("fig11", || {
            experiments::fig11_read_dominated::run_with(&args, &ctx)
        });
        spanned("fig12", || {
            experiments::fig12_heatmap::run_with(&args, &ctx)
        });
        spanned("fig14", || {
            experiments::fig14_unseen_scale::run_with(&args, &ctx)
        });
        spanned("fig15", || {
            experiments::fig15_unseen_composition::run_with(&args, &ctx)
        });
        spanned("fig16", || {
            experiments::fig16_unseen_shape::run_with(&args, &ctx)
        });
        spanned("fig18", || {
            experiments::fig18_shape_examples::run_with(&args, &ctx)
        });
        spanned("fig19", || {
            experiments::fig19_ransomware::run_with(&args, &ctx)
        });
        spanned("fig20", || {
            experiments::fig20_cryptojacking::run_with(&args, &ctx)
        });
        spanned("fig22", || experiments::fig22_masks::run_with(&args, &ctx));
        spanned("ablations", || {
            experiments::ablations::run_with(&args, &ctx)
        });

        // The flat-learning direction of Fig. 16 needs its own context.
        let flat_ctx = match flat_task {
            Some(task) => task.join().expect("flat-context training panicked"),
            None => {
                println!("\n[training the flat-learning context for fig16b ...]");
                ExpCtx::social_shaped(&args, TrafficShape::Flat)
            }
        };
        spanned("fig16b", || {
            experiments::fig16_unseen_shape::run_reverse_with(&args, &flat_ctx)
        });

        // Hotel reservation (Fig. 17).
        let hotel_ctx = match hotel_task {
            Some(task) => task.join().expect("hotel-context training panicked"),
            None => {
                println!("\n[training the hotel-reservation estimators ...]");
                ExpCtx::hotel(&args)
            }
        };
        spanned("fig17", || {
            experiments::fig17_hotel_3x::run_with(&args, &hotel_ctx)
        });
    });

    // Wider-swarm, transfer and synthetic-dimension studies train their own
    // models.
    spanned("fig21", || experiments::fig21_expert_pca::run(&args));
    spanned("transfer", || experiments::transfer::run(&args));
    spanned("scalability", || experiments::scalability::run(&args));

    // Drain buffered telemetry (the JSONL sink) before reporting completion.
    telemetry::flush();

    println!(
        "\nall experiments completed in {:.1} minutes; JSON dumps in {}",
        started.elapsed().as_secs_f64() / 60.0,
        args.out
    );
}
