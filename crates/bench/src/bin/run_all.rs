//! Runs every experiment in paper order, reusing trained contexts where the
//! experiments share a learning phase. This is the one-command regeneration
//! entry point behind EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p deeprest-bench --bin run_all
//! ```

use deeprest_bench::experiments;
use deeprest_bench::{Args, ExpCtx};
use deeprest_workload::TrafficShape;

fn main() {
    let args = Args::parse();
    let started = std::time::Instant::now();

    // Workload-only figures need no training.
    experiments::fig09_learning_traffic::run(&args);
    experiments::fig13_query_traffic::run(&args);
    experiments::table1_synthesizer::run(&args);

    // One social-network context serves most experiments.
    println!("\n[training the social-network estimators ...]");
    let ctx = ExpCtx::social(&args);
    println!(
        "[DeepRest: {} experts, feature dim {}, {:.1}s training]",
        ctx.estimators.report.expert_count,
        ctx.estimators.report.feature_dim,
        ctx.estimators.report.train_seconds
    );
    experiments::fig10_compose_dominated::run_with(&args, &ctx);
    experiments::fig11_read_dominated::run_with(&args, &ctx);
    experiments::fig12_heatmap::run_with(&args, &ctx);
    experiments::fig14_unseen_scale::run_with(&args, &ctx);
    experiments::fig15_unseen_composition::run_with(&args, &ctx);
    experiments::fig16_unseen_shape::run_with(&args, &ctx);
    experiments::fig18_shape_examples::run_with(&args, &ctx);
    experiments::fig19_ransomware::run_with(&args, &ctx);
    experiments::fig20_cryptojacking::run_with(&args, &ctx);
    experiments::fig22_masks::run_with(&args, &ctx);
    experiments::ablations::run_with(&args, &ctx);

    // The flat-learning direction of Fig. 16 needs its own context.
    println!("\n[training the flat-learning context for fig16b ...]");
    let flat_ctx = ExpCtx::social_shaped(&args, TrafficShape::Flat);
    experiments::fig16_unseen_shape::run_reverse_with(&args, &flat_ctx);

    // Hotel reservation (Fig. 17).
    println!("\n[training the hotel-reservation estimators ...]");
    let hotel_ctx = ExpCtx::hotel(&args);
    experiments::fig17_hotel_3x::run_with(&args, &hotel_ctx);

    // Wider-swarm, transfer and synthetic-dimension studies train their own
    // models.
    experiments::fig21_expert_pca::run(&args);
    experiments::transfer::run(&args);
    experiments::scalability::run(&args);

    println!(
        "\nall experiments completed in {:.1} minutes; JSON dumps in {}",
        started.elapsed().as_secs_f64() / 60.0,
        args.out
    );
}
