//! Standalone runner; see `deeprest_bench::experiments::scalability`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::scalability::run(&args);
}
