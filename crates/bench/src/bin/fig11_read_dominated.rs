//! Standalone runner; see `deeprest_bench::experiments::fig11_read_dominated`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig11_read_dominated::run(&args);
}
