//! Standalone runner; see `deeprest_bench::experiments::fig19_ransomware`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig19_ransomware::run(&args);
}
