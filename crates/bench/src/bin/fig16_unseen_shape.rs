//! Standalone runner; see `deeprest_bench::experiments::fig16_unseen_shape`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig16_unseen_shape::run(&args);
}
