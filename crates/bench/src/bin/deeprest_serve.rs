//! `deeprest_serve` — online serving driver.
//!
//! Replays a recorded Jaeger document (or JSONL stream of documents), or a
//! live `deeprest-sim` feed, through the streaming estimation pipeline:
//! bounded ingest queue → watermark window sealing → O(1)-per-window
//! inference → live sanity alerts. Prints one line per sealed window plus
//! every alert, and can cross-check the streamed outputs bit-for-bit
//! against the batch path (`--assert-batch`).
//!
//! Replay mode (the CI smoke path):
//!
//! ```text
//! deeprest_serve --replay crates/core/tests/fixtures/mini_jaeger.json \
//!     --spread 0.4 --window-secs 1 --assert-batch
//! ```
//!
//! Fixtures carry zero timestamps, so `--spread` assigns an even arrival
//! schedule. Without `--model`, a small model is trained on the replayed
//! windows against synthetic per-component CPU series (deterministic, so
//! the run is reproducible).
//!
//! Live-sim mode:
//!
//! ```text
//! deeprest_serve --sim --speed 0 --epochs 8
//! ```
//!
//! trains on one simulated day of the social network, then streams a
//! second day with a cryptojacking attack planted halfway — the sanity
//! alerts fire while the mining runs.
//!
//! Multi-tenant replay (`--tenants N`) replays the same stream as `N`
//! tenant applications through the `TenantRegistry` front end (per-tenant
//! bounded queues, DRR fair scheduling, overload ladder). `--flood T`
//! arms the `tenant.flood` probe against tenant `T` (10× amplification)
//! and, combined with `--assert-batch`, proves isolation: every
//! non-flooded tenant must still be bit-identical to the batch path.

use std::collections::BTreeMap;
use std::sync::Arc;

use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_fault::{self as fault, FaultPlan};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_serve::{
    batch_reference, replay, CheckpointStore, IngestQueue, OverflowPolicy, OverloadConfig,
    Pipeline, SchedConfig, ServeConfig, TenantConfig, TenantRegistry, WindowOutput,
};
use deeprest_sim::anomaly::CryptojackingAttack;
use deeprest_sim::apps;
use deeprest_sim::engine::{simulate, simulate_with, SimConfig};
use deeprest_trace::stream::WindowAssembler;
use deeprest_trace::window::{partition, TimestampedTrace, WindowedTraces};
use deeprest_trace::Interner;
use deeprest_workload::WorkloadSpec;

struct ServeArgs {
    replay: Option<String>,
    sim: bool,
    model: Option<String>,
    spread: Option<f64>,
    speed: f64,
    window_secs: f64,
    lateness_secs: f64,
    queue: usize,
    drop_oldest: bool,
    epochs: usize,
    hidden: usize,
    seed: u64,
    assert_batch: bool,
    checkpoint: Option<String>,
    quiet: bool,
    tenants: usize,
    flood: Option<usize>,
    window_quota: u32,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            replay: None,
            sim: false,
            model: None,
            spread: None,
            speed: 0.0,
            window_secs: 30.0,
            lateness_secs: 5.0,
            queue: 1024,
            drop_oldest: false,
            epochs: 8,
            hidden: 16,
            seed: 17,
            assert_batch: false,
            checkpoint: None,
            quiet: false,
            tenants: 1,
            flood: None,
            window_quota: 0,
        }
    }
}

impl ServeArgs {
    fn parse() -> Self {
        let mut out = Self::default();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--replay" => out.replay = Some(value("--replay")),
                "--sim" => out.sim = true,
                "--model" => out.model = Some(value("--model")),
                "--spread" => out.spread = Some(value("--spread").parse().expect("--spread f64")),
                "--speed" => out.speed = value("--speed").parse().expect("--speed f64"),
                "--window-secs" => {
                    out.window_secs = value("--window-secs").parse().expect("--window-secs f64");
                }
                "--lateness-secs" => {
                    out.lateness_secs = value("--lateness-secs")
                        .parse()
                        .expect("--lateness-secs f64");
                }
                "--queue" => out.queue = value("--queue").parse().expect("--queue usize"),
                "--drop-oldest" => out.drop_oldest = true,
                "--epochs" => out.epochs = value("--epochs").parse().expect("--epochs usize"),
                "--hidden" => out.hidden = value("--hidden").parse().expect("--hidden usize"),
                "--seed" => out.seed = value("--seed").parse().expect("--seed u64"),
                "--assert-batch" => out.assert_batch = true,
                "--checkpoint" => out.checkpoint = Some(value("--checkpoint")),
                "--quiet" => out.quiet = true,
                "--tenants" => out.tenants = value("--tenants").parse().expect("--tenants usize"),
                "--flood" => out.flood = Some(value("--flood").parse().expect("--flood usize")),
                "--window-quota" => {
                    out.window_quota = value("--window-quota").parse().expect("--window-quota u32");
                }
                other => panic!("unknown flag {other}; see `deeprest_serve` docs for usage"),
            }
        }
        out
    }
}

/// Everything one serving session needs: a model, the incoming traces'
/// name table, the arrival stream, and (optionally) observed metrics for
/// the sanity check.
struct Session {
    model: DeepRest,
    source: Interner,
    stream: Vec<TimestampedTrace>,
    observations: Option<MetricsRegistry>,
    /// Scrape-window length the stream was produced with (the sim fixes
    /// it; replay takes `--window-secs`).
    window_secs: f64,
}

fn main() {
    let args = ServeArgs::parse();
    let session = if args.sim {
        sim_session(&args)
    } else if args.replay.is_some() {
        replay_session(&args)
    } else {
        eprintln!("deeprest_serve: pass --replay <file> or --sim");
        std::process::exit(2);
    };

    let config = ServeConfig::default()
        .with_window_secs(session.window_secs)
        .with_lateness_secs(args.lateness_secs)
        .with_queue_capacity(args.queue)
        .with_overflow(if args.drop_oldest {
            OverflowPolicy::DropOldest
        } else {
            OverflowPolicy::Block
        });

    if args.tenants > 1 {
        run_multi_tenant(&session, config, &args);
        return;
    }

    let mut pipeline = Pipeline::new(&session.model, &session.source, config);
    if let Some(obs) = session.observations.clone() {
        pipeline = pipeline.with_observations(obs);
    }

    // Producer: push arrivals through the bounded queue, pacing by event
    // time when --speed > 0 (e.g. 2.0 = twice real time; 0 = max speed).
    let queue = Arc::new(IngestQueue::new(config.queue_capacity, config.overflow));
    let producer = {
        let queue = Arc::clone(&queue);
        let stream = session.stream.clone();
        let speed = args.speed;
        std::thread::spawn(move || {
            let mut prev = 0.0f64;
            for t in stream {
                if speed > 0.0 {
                    let gap = (t.at_secs - prev).max(0.0) / speed;
                    if gap > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(gap));
                    }
                    prev = t.at_secs;
                }
                // Blocks under Block policy, displaces (counted) under
                // DropOldest; the only rejection is a closed queue.
                if queue.push_typed(t).is_err() {
                    break;
                }
            }
            queue.close();
        })
    };

    let mut outputs: Vec<WindowOutput> = Vec::new();
    while let Some(t) = queue.pop() {
        for out in pipeline.ingest(t).expect("serving step failed") {
            print_window(&pipeline, &out, args.quiet);
            outputs.push(out);
        }
    }
    for out in pipeline.flush().expect("serving flush failed") {
        print_window(&pipeline, &out, args.quiet);
        outputs.push(out);
    }
    producer.join().expect("producer thread");

    let alert_total: usize = outputs.iter().map(|o| o.alerts.len()).sum();
    println!(
        "serve: {} windows, {} traces, {} late-dropped, {} queue-evicted, {} alerts",
        outputs.len(),
        outputs.iter().map(|o| o.trace_count).sum::<usize>(),
        pipeline.late_dropped(),
        queue.dropped_overflow(),
        alert_total
    );

    if session.observations.is_some() {
        print_calibration(&session, &outputs);
    }

    if let Some(dir) = &args.checkpoint {
        let store = CheckpointStore::new(dir);
        store
            .save(&pipeline.checkpoint())
            .expect("write checkpoint");
        println!(
            "serve: checkpoint written to {}",
            store.latest_path().display()
        );
    }

    if args.assert_batch {
        assert_against_batch(&session, &config, &outputs);
    }
}

/// Multi-tenant replay: the same stream as `--tenants N` tenant
/// applications through the registry front end. With `--flood T` the
/// `tenant.flood` probe amplifies tenant `T`'s submissions 10×; with
/// `--assert-batch` every non-flooded tenant is cross-checked
/// bit-for-bit against the batch path — the isolation contract, live.
fn run_multi_tenant(session: &Session, config: ServeConfig, args: &ServeArgs) {
    let mut registry = TenantRegistry::new(SchedConfig::default(), OverloadConfig::default());
    for i in 0..args.tenants {
        registry.add_tenant(
            &session.model,
            &session.source,
            config,
            TenantConfig::new(format!("tenant{i}"))
                .with_queue_capacity(config.queue_capacity)
                .with_overflow(config.overflow)
                .with_window_quota(args.window_quota),
        );
    }

    let outputs = match args.flood {
        Some(flooded) => {
            let plan = Arc::new(
                FaultPlan::new(args.seed)
                    .window("tenant.flood", 0, u64::MAX)
                    .payload(flooded as u64),
            );
            fault::with_plan(plan, || drive_registry(&mut registry, &session.stream))
        }
        None => drive_registry(&mut registry, &session.stream),
    };

    for t in 0..args.tenants {
        let stats = registry.stats(t);
        let windows = outputs.iter().filter(|o| o.tenant == t).count();
        println!(
            "tenant {t}: {windows} windows | admitted {} | shed {} | rejected {} (quota {} / breaker {} / queue {})",
            stats.admitted,
            stats.shed,
            stats.rejected_window_quota
                + stats.rejected_byte_quota
                + stats.rejected_breaker
                + stats.rejected_queue,
            stats.rejected_window_quota + stats.rejected_byte_quota,
            stats.rejected_breaker,
            stats.rejected_queue,
        );
    }
    println!(
        "serve: {} tenants, {} rounds, overload level {:?}",
        args.tenants,
        registry.round(),
        registry.overload_level()
    );

    if args.assert_batch {
        for t in 0..args.tenants {
            if args.flood == Some(t) {
                continue;
            }
            let mine: Vec<WindowOutput> = outputs
                .iter()
                .filter(|o| o.tenant == t)
                .map(|o| o.output.clone())
                .collect();
            assert_against_batch(session, &config, &mine);
        }
    }
}

/// Feeds every tenant the stream in 8-arrival slices, one slice per
/// scheduling round, then flushes.
fn drive_registry(
    registry: &mut TenantRegistry<'_>,
    stream: &[TimestampedTrace],
) -> Vec<deeprest_serve::tenant::TenantOutput> {
    const CHUNK: usize = 8;
    let tenants = registry.tenant_count();
    let mut outputs = Vec::new();
    let mut cursor = 0usize;
    while cursor < stream.len() {
        let upto = (cursor + CHUNK).min(stream.len());
        for arrival in &stream[cursor..upto] {
            for t in 0..tenants {
                let _ = registry.submit(t, arrival.clone());
            }
        }
        cursor = upto;
        let round = registry.run_round();
        for err in &round.errors {
            eprintln!("tenant {} error: {}", err.tenant, err.error);
        }
        outputs.extend(round.outputs);
    }
    let flushed = registry.flush();
    for err in &flushed.errors {
        eprintln!("tenant {} error: {}", err.tenant, err.error);
    }
    outputs.extend(flushed.outputs);
    outputs
}

/// Reports δ-interval calibration (PICP + mean width) of the replayed
/// estimates against the observed utilization, per expert and pooled.
fn print_calibration(session: &Session, outputs: &[WindowOutput]) {
    let Some(registry) = session.observations.as_ref() else {
        return;
    };
    let nominal = f64::from(session.model.config().delta);
    let keys = session.model.expert_keys();
    let (mut actual, mut lower, mut upper) = (Vec::new(), Vec::new(), Vec::new());
    for (e, key) in keys.iter().enumerate() {
        // Cumulative resources are estimated as per-window increments, so
        // their observations are delta-encoded before comparison (first
        // increment zero) — the output-space encoding the scorer uses.
        let is_delta = session.model.expert_is_delta(key).unwrap_or(false);
        let (mut a, mut lo, mut up) = (Vec::new(), Vec::new(), Vec::new());
        for out in outputs {
            let Some(series) = registry.get(key) else {
                continue;
            };
            if out.window >= series.len() {
                continue;
            }
            let p = &out.estimates[e];
            if !(p.lower.is_finite() && p.upper.is_finite()) {
                continue;
            }
            let v = series.get(out.window);
            a.push(if is_delta {
                if out.window == 0 {
                    0.0
                } else {
                    (v - series.get(out.window - 1)).max(0.0)
                }
            } else {
                v
            });
            lo.push(p.lower);
            up.push(p.upper);
        }
        if !a.is_empty() {
            let report = deeprest_metrics::eval::interval_calibration(
                &TimeSeries::from_values(a.clone()),
                &TimeSeries::from_values(lo.clone()),
                &TimeSeries::from_values(up.clone()),
                nominal,
            );
            println!("calibration: {key} {report}");
        }
        actual.extend_from_slice(&a);
        lower.extend_from_slice(&lo);
        upper.extend_from_slice(&up);
    }
    if !actual.is_empty() {
        let report = deeprest_metrics::eval::interval_calibration(
            &TimeSeries::from_values(actual),
            &TimeSeries::from_values(lower),
            &TimeSeries::from_values(upper),
            nominal,
        );
        println!("calibration: overall {report}");
    }
}

fn print_window(pipeline: &Pipeline<'_>, out: &WindowOutput, quiet: bool) {
    if !quiet {
        let est: Vec<String> = pipeline
            .keys()
            .iter()
            .zip(out.estimates.iter())
            .map(|(k, p)| format!("{k} {:.2} [{:.2}, {:.2}]", p.expected, p.lower, p.upper))
            .collect();
        println!(
            "window {:>4} | {:>4} traces | {}",
            out.window,
            out.trace_count,
            est.join(" | ")
        );
    }
    for alert in &out.alerts {
        println!("  ALERT {alert}");
    }
}

/// Re-derives the expected outputs through the batch path and compares
/// every float bit-for-bit; exits non-zero on any mismatch.
fn assert_against_batch(session: &Session, config: &ServeConfig, streamed: &[WindowOutput]) {
    let mut assembler = WindowAssembler::new(config.window_secs, config.lateness_secs);
    let mut sealed = Vec::new();
    for t in session.stream.iter().cloned() {
        sealed.extend(assembler.push(t));
    }
    sealed.extend(assembler.flush());

    let expected = batch_reference(
        &session.model,
        &sealed,
        &session.source,
        session.observations.as_ref(),
        config,
    );
    if expected.len() != streamed.len() {
        eprintln!(
            "assert-batch: FAIL — streamed {} windows, batch expected {}",
            streamed.len(),
            expected.len()
        );
        std::process::exit(1);
    }
    for (a, b) in streamed.iter().zip(expected.iter()) {
        if !outputs_equal(a, b) {
            eprintln!(
                "assert-batch: FAIL — window {} diverges from batch",
                a.window
            );
            eprintln!("  streamed: {a:?}");
            eprintln!("  batch:    {b:?}");
            std::process::exit(1);
        }
    }
    println!(
        "assert-batch: PASS — {} windows bit-identical to the batch path",
        streamed.len()
    );
}

fn outputs_equal(a: &WindowOutput, b: &WindowOutput) -> bool {
    let bits = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.window == b.window
        && a.trace_count == b.trace_count
        && a.estimates.len() == b.estimates.len()
        && a.estimates.iter().zip(&b.estimates).all(|(x, y)| {
            bits(x.expected, y.expected) && bits(x.lower, y.lower) && bits(x.upper, y.upper)
        })
        && a.scores.len() == b.scores.len()
        && a.scores.iter().zip(&b.scores).all(|(x, y)| bits(*x, *y))
        && a.alerts.len() == b.alerts.len()
}

/// Replay mode: load the document/JSONL, optionally respace arrivals, and
/// either load a model or train one on the replayed windows against
/// synthetic per-component CPU series.
fn replay_session(args: &ServeArgs) -> Session {
    let path = args.replay.as_deref().expect("--replay");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("deeprest_serve: cannot read {path}: {e}"));
    let mut interner = Interner::new();
    let loaded = if path.ends_with(".jsonl") {
        replay::load_jsonl(&text, &mut interner)
    } else {
        replay::load_document(&text, &mut interner)
    }
    .unwrap_or_else(|e| panic!("deeprest_serve: cannot import {path}: {e}"));
    let stream = match args.spread {
        Some(spacing) => replay::spread_evenly(loaded, spacing),
        None => loaded,
    };

    let model = match &args.model {
        Some(mpath) => {
            let json = std::fs::read_to_string(mpath)
                .unwrap_or_else(|e| panic!("deeprest_serve: cannot read {mpath}: {e}"));
            DeepRest::from_json(&json).expect("model JSON")
        }
        None => {
            // Train on the replayed windows: synthetic CPU series derived
            // from per-component span counts make the run self-contained.
            let last = stream.iter().map(|t| t.at_secs).fold(0.0f64, f64::max);
            let count = (last / args.window_secs) as usize + 1;
            let windows = partition(stream.iter().cloned(), args.window_secs, count);
            let metrics = synthetic_metrics(&windows, &interner);
            let cfg = DeepRestConfig::default()
                .with_epochs(args.epochs)
                .with_hidden(args.hidden)
                .with_seed(args.seed);
            let (model, _) = DeepRest::fit(&windows, &metrics, &interner, cfg);
            model
        }
    };
    Session {
        model,
        source: interner,
        stream,
        observations: None,
        window_secs: args.window_secs,
    }
}

/// One CPU series per component: `1.0 + 0.5 · span count in the window`.
/// Deterministic, so replay runs (and their batch cross-check) are
/// reproducible without a metrics file.
fn synthetic_metrics(windows: &WindowedTraces, interner: &Interner) -> MetricsRegistry {
    let mut counts: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (t, window) in windows.windows.iter().enumerate() {
        for trace in window {
            trace.root.visit(&mut |s| {
                counts
                    .entry(interner.resolve(s.component).to_owned())
                    .or_insert_with(|| vec![0.0; windows.len()])[t] += 1.0;
            });
        }
    }
    let mut metrics = MetricsRegistry::new();
    for (component, series) in counts {
        let cpu: TimeSeries = series.iter().map(|c| 1.0 + 0.5 * c).collect();
        metrics.insert(MetricKey::new(component, ResourceKind::Cpu), cpu);
    }
    metrics
}

/// Live-sim mode: learn one simulated day of the social network, then
/// stream a second day with a cryptojacking attack planted halfway.
fn sim_session(args: &ServeArgs) -> Session {
    let app = apps::social_network();
    let wpd = 96;
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(1)
        .with_windows_per_day(wpd)
        .generate();
    let learn = simulate(
        &app,
        &learn_traffic,
        &SimConfig::default().with_seed(args.seed),
    );

    let scope = vec![
        MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
    ];
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let cfg = DeepRestConfig::default()
        .with_epochs(args.epochs)
        .with_hidden(args.hidden)
        .with_seed(args.seed)
        .with_scope(scope);
    let (model, _) = DeepRest::fit(&learn.traces, &metrics, &learn.interner, cfg);

    let check_traffic = WorkloadSpec::new(140.0, app.default_mix())
        .with_days(1)
        .with_windows_per_day(wpd)
        .with_seed(args.seed ^ 0x505)
        .generate();
    let attack = CryptojackingAttack::new("PostStorageMongoDB", wpd / 2, 6.0);
    let truth = simulate_with(
        &app,
        &check_traffic,
        &SimConfig::default().with_seed(args.seed ^ 0x71),
        &[&attack],
    );

    let window_secs = truth.traces.window_secs;
    Session {
        model,
        source: truth.interner.clone(),
        stream: windowed_to_stream(&truth.traces),
        observations: Some(truth.metrics),
        window_secs,
    }
}

/// Spreads each window's traces evenly inside the window, producing an
/// in-order arrival stream whose batch partition equals the input.
fn windowed_to_stream(w: &WindowedTraces) -> Vec<TimestampedTrace> {
    let mut out = Vec::new();
    for (t, window) in w.windows.iter().enumerate() {
        let n = window.len().max(1) as f64;
        for (j, trace) in window.iter().enumerate() {
            out.push(TimestampedTrace {
                at_secs: (t as f64 + (j as f64 + 0.5) / n) * w.window_secs,
                trace: trace.clone(),
            });
        }
    }
    out
}
