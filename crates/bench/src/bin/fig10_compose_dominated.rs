//! Standalone runner; see `deeprest_bench::experiments::fig10_compose_dominated`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig10_compose_dominated::run(&args);
}
