//! Standalone runner; see `deeprest_bench::experiments::fig20_cryptojacking`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig20_cryptojacking::run(&args);
}
