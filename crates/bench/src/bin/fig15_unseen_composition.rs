//! Standalone runner; see `deeprest_bench::experiments::fig15_unseen_composition`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig15_unseen_composition::run(&args);
}
