//! Standalone runner; see `deeprest_bench::experiments::fig21_expert_pca`.

fn main() {
    let args = deeprest_bench::Args::parse();
    deeprest_bench::experiments::fig21_expert_pca::run(&args);
}
