//! Shared experiment context: application, learning data, trained
//! estimators and uniform query execution.

use std::collections::BTreeMap;

use deeprest_baselines::{
    BaselineEstimator, ComponentAwareScaling, LearnData, QueryData, ResourceAwareDl, SimpleScaling,
};
use deeprest_core::{DeepRest, DeepRestConfig, OptimizerKind, TrainReport};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_sim::anomaly::Injector;
use deeprest_sim::engine::{simulate, simulate_with, SimConfig, SimOutput};
use deeprest_sim::{apps, AppSpec};
use deeprest_workload::{ApiTraffic, TrafficShape, WorkloadSpec};

use crate::Args;

/// The Fig. 8 focus scope: every tracked resource of the six focus
/// components (18 experts).
pub fn focus_scope(app: &AppSpec) -> Vec<MetricKey> {
    apps::FOCUS_COMPONENTS
        .iter()
        .filter_map(|c| app.component(c).map(|spec| (c, spec.stateful)))
        .flat_map(|(c, stateful)| {
            ResourceKind::for_component(stateful)
                .iter()
                .map(|&r| MetricKey::new(*c, r))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Restricts a registry to the given keys (baselines train per-series; the
/// focus scope keeps experiment runs minutes-scale).
pub fn filter_metrics(metrics: &MetricsRegistry, scope: &[MetricKey]) -> MetricsRegistry {
    let mut out = MetricsRegistry::new();
    for key in scope {
        if let Some(series) = metrics.get(key) {
            out.insert(key.clone(), series.clone());
        }
    }
    out
}

/// The four estimators of §5.1, driven uniformly.
pub struct EstimatorSet {
    /// The trained DeepRest model.
    pub deeprest: DeepRest,
    /// Training diagnostics for DeepRest.
    pub report: TrainReport,
    resrc_dl: ResourceAwareDl,
    simple: SimpleScaling,
    comp_aware: ComponentAwareScaling,
}

/// Display names in the paper's presentation order.
pub const ESTIMATOR_NAMES: [&str; 4] = [
    "DeepRest",
    "resrc-aware DL",
    "simple scaling",
    "component-aware",
];

impl EstimatorSet {
    /// Runs a resource-allocation query (mode 1: traffic only) through all
    /// four estimators. Returns per-estimator metric estimates in
    /// [`ESTIMATOR_NAMES`] order. For cumulative resources DeepRest's delta
    /// predictions are integrated from `initials` (the disk size at query
    /// start, known to the operator).
    pub fn estimate_traffic(
        &self,
        traffic: &ApiTraffic,
        initials: &BTreeMap<MetricKey, f64>,
        seed: u64,
    ) -> Vec<(String, BTreeMap<MetricKey, TimeSeries>)> {
        let mut out = Vec::with_capacity(4);

        let deeprest_est = self.deeprest.estimate_traffic(traffic, seed);
        let mut deeprest_map = BTreeMap::new();
        for (key, pred) in deeprest_est.iter() {
            let initial = initials.get(key).copied().unwrap_or(0.0);
            deeprest_map.insert(key.clone(), pred.integrated(initial).expected);
        }
        out.push(("DeepRest".to_owned(), deeprest_map));

        let query = QueryData {
            traffic,
            traces: None,
            interner: None,
        };
        for baseline in [
            &self.resrc_dl as &dyn BaselineEstimator,
            &self.simple,
            &self.comp_aware,
        ] {
            out.push((display_name(baseline.name()), baseline.estimate(&query)));
        }
        out
    }

    /// DeepRest's full interval prediction for a traffic query (used by the
    /// curve figures).
    pub fn deeprest_intervals(&self, traffic: &ApiTraffic, seed: u64) -> deeprest_core::Estimates {
        self.deeprest.estimate_traffic(traffic, seed)
    }
}

fn display_name(internal: &str) -> String {
    match internal {
        "resrc-aware-dl" => "resrc-aware DL".to_owned(),
        "simple-scaling" => "simple scaling".to_owned(),
        "component-aware-scaling" => "component-aware".to_owned(),
        other => other.to_owned(),
    }
}

/// A fully prepared experiment: application, learning phase and trained
/// estimators.
pub struct ExpCtx {
    /// Experiment options.
    pub args: Args,
    /// The simulated application.
    pub app: AppSpec,
    /// Simulator configuration (derived from the master seed).
    pub sim_cfg: SimConfig,
    /// The 7-day application-learning traffic (Fig. 9).
    pub learn_traffic: ApiTraffic,
    /// Traces + metrics of the learning phase.
    pub learn: SimOutput,
    /// Metric keys in scope (focus set or all).
    pub scope: Vec<MetricKey>,
    /// The four trained estimators.
    pub estimators: EstimatorSet,
}

impl ExpCtx {
    /// Prepares the social network experiment context (two-peak learning
    /// traffic, the paper's default).
    pub fn social(args: &Args) -> Self {
        Self::build(apps::social_network(), args, TrafficShape::TwoPeak)
    }

    /// Prepares the social network context with a custom learning-phase
    /// traffic shape (the Fig. 16 "flat → 2-peak" direction).
    pub fn social_shaped(args: &Args, shape: TrafficShape) -> Self {
        Self::build(apps::social_network(), args, shape)
    }

    /// Prepares the hotel reservation experiment context.
    pub fn hotel(args: &Args) -> Self {
        Self::build(apps::hotel_reservation(), args, TrafficShape::TwoPeak)
    }

    fn build(app: AppSpec, args: &Args, shape: TrafficShape) -> Self {
        let learn_traffic = WorkloadSpec::new(args.users, app.default_mix())
            .with_days(args.days)
            .with_windows_per_day(args.windows_per_day)
            .with_seed(args.seed)
            .with_shape(shape)
            .generate();
        let sim_cfg = SimConfig::default().with_seed(args.seed ^ 0xa5a5);
        let learn = simulate(&app, &learn_traffic, &sim_cfg);

        let scope: Vec<MetricKey> = if args.full {
            learn.metrics.keys().cloned().collect()
        } else if app.name == "hotel-reservation" {
            hotel_focus_scope(&app)
        } else {
            focus_scope(&app)
        };
        let scoped_metrics = filter_metrics(&learn.metrics, &scope);

        let mut config = DeepRestConfig::default()
            .with_hidden(args.hidden)
            .with_epochs(args.epochs)
            .with_seed(args.seed)
            .with_scope(scope.clone());
        if let Some(threads) = args.threads {
            config = config.with_threads(threads);
        }
        if args.paper_sgd {
            config = config.with_optimizer(OptimizerKind::Sgd {
                lr: 0.001,
                momentum: 0.0,
            });
        }
        let (deeprest, report) =
            DeepRest::fit(&learn.traces, &scoped_metrics, &learn.interner, config);

        let learn_data = LearnData {
            traffic: &learn_traffic,
            traces: &learn.traces,
            metrics: &scoped_metrics,
            interner: &learn.interner,
        };
        let mut resrc_dl = ResourceAwareDl::new();
        resrc_dl.fit(&learn_data);
        let mut simple = SimpleScaling::new();
        simple.fit(&learn_data);
        let mut comp_aware = ComponentAwareScaling::new();
        comp_aware.fit(&learn_data);

        Self {
            args: args.clone(),
            app,
            sim_cfg,
            learn_traffic,
            learn,
            scope,
            estimators: EstimatorSet {
                deeprest,
                report,
                resrc_dl,
                simple,
                comp_aware,
            },
        }
    }

    /// The pool repeated independent queries fan out over: `--threads` when
    /// given, the process-wide default otherwise.
    pub fn pool(&self) -> deeprest_tensor::Pool {
        match self.args.threads {
            Some(n) => deeprest_tensor::Pool::with_threads(n),
            None => deeprest_tensor::Pool::global(),
        }
    }

    /// Generates query traffic with the learning mix but overridden knobs.
    pub fn query_workload(&self) -> WorkloadSpec {
        WorkloadSpec::new(self.args.users, self.app.default_mix())
            .with_days(1)
            .with_windows_per_day(self.args.windows_per_day)
            .with_seed(self.args.seed.wrapping_mul(31).wrapping_add(1))
    }

    /// Runs query traffic through the real application to obtain the ground
    /// truth (the paper "collects the actual measurements by running the
    /// query traffic in the application").
    pub fn ground_truth(&self, traffic: &ApiTraffic) -> SimOutput {
        let cfg = self.sim_cfg.clone().with_seed(self.sim_cfg.seed ^ 0x77);
        simulate(&self.app, traffic, &cfg)
    }

    /// Ground truth with anomaly injectors active (sanity-check
    /// experiments).
    pub fn ground_truth_with(
        &self,
        traffic: &ApiTraffic,
        injectors: &[&dyn Injector],
    ) -> SimOutput {
        let cfg = self.sim_cfg.clone().with_seed(self.sim_cfg.seed ^ 0x77);
        simulate_with(&self.app, traffic, &cfg, injectors)
    }

    /// Initial values for cumulative resources at query start (the last
    /// observed learning value), used to integrate DeepRest's disk deltas.
    pub fn cumulative_initials(&self) -> BTreeMap<MetricKey, f64> {
        self.scope
            .iter()
            .filter(|k| k.resource.cumulative())
            .filter_map(|k| {
                self.learn
                    .metrics
                    .get(k)
                    .map(|s| (k.clone(), s.values().last().copied().unwrap_or(0.0)))
            })
            .collect()
    }

    /// Ground-truth-aligned initials (disk size at the *query* run's start),
    /// for MAPE evaluation against a specific ground-truth run.
    pub fn initials_from(&self, truth: &SimOutput) -> BTreeMap<MetricKey, f64> {
        self.scope
            .iter()
            .filter(|k| k.resource.cumulative())
            .filter_map(|k| {
                truth
                    .metrics
                    .get(k)
                    .map(|s| (k.clone(), s.values().first().copied().unwrap_or(0.0)))
            })
            .collect()
    }

    /// MAPE of every estimator against ground truth for one resource.
    /// Returns `(estimator, mape)` pairs in [`ESTIMATOR_NAMES`] order.
    pub fn mape_table(
        &self,
        estimates: &[(String, BTreeMap<MetricKey, TimeSeries>)],
        truth: &SimOutput,
        key: &MetricKey,
    ) -> Vec<(String, f64)> {
        let actual = truth
            .metrics
            .get(key)
            .unwrap_or_else(|| panic!("no ground truth for {key}"));
        estimates
            .iter()
            .map(|(name, map)| {
                let est = map
                    .get(key)
                    .unwrap_or_else(|| panic!("{name} produced no estimate for {key}"));
                (name.clone(), deeprest_metrics::eval::mape(actual, est))
            })
            .collect()
    }
}

/// Focus components for the hotel reservation app (Fig. 17 discusses the
/// FrontendService; we track the search path alongside it).
fn hotel_focus_scope(app: &AppSpec) -> Vec<MetricKey> {
    [
        "FrontendService",
        "SearchService",
        "ProfileService",
        "ReserveMongoDB",
    ]
    .iter()
    .filter_map(|c| app.component(c).map(|spec| (c, spec.stateful)))
    .flat_map(|(c, stateful)| {
        ResourceKind::for_component(stateful)
            .iter()
            .map(|&r| MetricKey::new(*c, r))
            .collect::<Vec<_>>()
    })
    .collect()
}
