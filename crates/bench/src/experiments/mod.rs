//! One module per reproduced table/figure; each exposes `run(&Args)`.
//!
//! The `run_all` binary executes every experiment in paper order; the
//! per-figure binaries are thin wrappers for running one in isolation.

pub mod ablations;
pub mod fig09_learning_traffic;
pub mod fig10_compose_dominated;
pub mod fig11_read_dominated;
pub mod fig12_heatmap;
pub mod fig13_query_traffic;
pub mod fig14_unseen_scale;
pub mod fig15_unseen_composition;
pub mod fig16_unseen_shape;
pub mod fig17_hotel_3x;
pub mod fig18_shape_examples;
pub mod fig19_ransomware;
pub mod fig20_cryptojacking;
pub mod fig21_expert_pca;
pub mod fig22_masks;
pub mod scalability;
pub mod table1_synthesizer;
pub mod transfer;

mod checkdays;
mod qualitative;
mod sweeps;

use deeprest_sim::AppSpec;

/// Builds a query API mix: the named endpoints get the given absolute
/// shares; every other endpoint splits the remaining mass proportionally to
/// its default weight.
///
/// # Panics
///
/// Panics if the overrides exceed mass 1.0 or name unknown endpoints.
pub fn mix_with(app: &AppSpec, overrides: &[(&str, f64)]) -> Vec<(String, f64)> {
    let override_mass: f64 = overrides.iter().map(|(_, w)| w).sum();
    assert!(
        override_mass <= 1.0 + 1e-9,
        "mix_with: overrides exceed total mass"
    );
    for (api, _) in overrides {
        assert!(app.api(api).is_some(), "mix_with: unknown endpoint {api}");
    }
    let rest: Vec<(String, f64)> = app
        .default_mix()
        .into_iter()
        .filter(|(api, _)| !overrides.iter().any(|(o, _)| o == api))
        .collect();
    let rest_mass: f64 = rest.iter().map(|(_, w)| w).sum();
    let remaining = (1.0 - override_mass).max(0.0);

    let mut mix: Vec<(String, f64)> = overrides
        .iter()
        .map(|(api, w)| ((*api).to_owned(), *w))
        .collect();
    for (api, w) in rest {
        mix.push((api, w / rest_mass.max(1e-12) * remaining));
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeprest_sim::apps;

    #[test]
    fn mix_with_preserves_total_mass() {
        let app = apps::social_network();
        let mix = mix_with(&app, &[("/composePost", 0.55)]);
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(mix[0], ("/composePost".to_owned(), 0.55));
        assert_eq!(mix.len(), app.apis.len());
    }

    #[test]
    fn mix_with_multiple_overrides() {
        let app = apps::social_network();
        let mix = mix_with(
            &app,
            &[
                ("/composePost", 0.10),
                ("/readUserTimeline", 0.85),
                ("/uploadMedia", 0.05),
            ],
        );
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Everything else gets zero mass.
        for (api, w) in &mix[3..] {
            assert!(*w < 1e-9, "{api} got mass {w}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn mix_with_rejects_unknown_api() {
        let app = apps::social_network();
        let _ = mix_with(&app, &[("/ghost", 0.5)]);
    }
}
