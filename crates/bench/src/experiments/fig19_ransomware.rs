//! Fig. 19: application sanity check identifying a ransomware attack. The
//! 9-day check period contains two benign-but-unusual days (a constantly
//! high day and a single-peak day) that fool pattern-based detection, plus
//! the real attack on day 6 (the paper's 07/19, 12:00-13:30). DeepRest
//! flags only the attack and emits an interpretable alert (Fig. 19c).

use deeprest_baselines::day_profile;
use deeprest_core::sanity::{self, SanityConfig};
use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_sim::anomaly::RansomwareAttack;

use super::checkdays::{build_check_traffic, flagged_days, pattern_detector_flags, DayKind};
use crate::{report, Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "fig19",
        "sanity check: ransomware on PostStorageMongoDB (attack on day 6, 12:00-13:30)",
    );
    let wpd = args.windows_per_day;
    let days = [
        DayKind::Normal,     // day 0 (the paper's 07/13)
        DayKind::FlatHigh,   // day 1 (07/14): "constantly high utilization"
        DayKind::Normal,     // day 2
        DayKind::SinglePeak, // day 3 (07/16): "only one peak-hour"
        DayKind::Normal,     // day 4
        DayKind::Normal,     // day 5
        DayKind::SinglePeak, // day 6 (07/19): one peak + THE ATTACK
        DayKind::Normal,     // day 7
        DayKind::Normal,     // day 8
    ];
    let traffic = build_check_traffic(ctx, &days, 0x1900);

    // Ransomware encrypts the post store over 1.5 hours around noon, day 6.
    let attack_start = 6 * wpd + wpd / 2;
    let attack_end = attack_start + (3 * wpd) / 48; // ~1.5h of a 24h day.
    let attack = RansomwareAttack::new("PostStorageMongoDB", attack_start, attack_end)
        .with_degraded_frontend("FrontendNGINX");
    let truth = ctx.ground_truth_with(&traffic, &[&attack]);

    let config = SanityConfig::default();
    let sanity = sanity::check(
        &ctx.estimators.deeprest,
        &truth.traces,
        &truth.interner,
        &truth.metrics,
        &config,
    );

    println!("  check-period API traffic (9 days):");
    report::curve("total requests", &traffic.total_series(), 108);

    let cpu_key = MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu);
    let thr_key = MetricKey::new("PostStorageMongoDB", ResourceKind::WriteThroughput);
    println!("\n  PostStorageMongoDB CPU (actual vs DeepRest-expected interval):");
    report::curve("actual", truth.metrics.get(&cpu_key).unwrap(), 108);
    let est = sanity.estimates.get(&cpu_key).unwrap();
    report::curve("expected (median)", &est.expected, 108);
    report::curve("expected (upper)", &est.upper, 108);
    println!("\n  PostStorageMongoDB write throughput anomaly score (1-D heatmap):");
    report::curve("deviation score", &sanity.per_resource[&thr_key], 108);
    println!("\n  overall ensemble anomaly score:");
    report::curve("overall score", &sanity.overall, 108);

    // DeepRest's verdict vs the pattern-based detector's.
    let deeprest_days = flagged_days(&sanity, wpd);
    let learned_profile = day_profile(
        ctx.learn
            .metrics
            .get(&cpu_key)
            .expect("learning metrics")
            .values(),
        wpd,
    );
    let pattern_days = pattern_detector_flags(
        truth.metrics.get(&cpu_key).unwrap(),
        &learned_profile,
        wpd,
        1.8,
    );
    println!(
        "\n  pattern-based detection flags days: {pattern_days:?} (days 1 and 3 are benign shape changes -> false alarms)"
    );
    println!("  DeepRest flags days:                {deeprest_days:?} (ground truth: attack on day 6 only)");

    println!("\n  interpretable alerts:");
    for event in &sanity.events {
        println!(
            "    Anomalous event: windows {}..{} (day {}), peak score {:.2}",
            event.start_window,
            event.end_window,
            event.start_window / wpd,
            event.peak_score
        );
        for finding in event.findings.iter().take(6) {
            println!("      {finding}");
        }
    }

    report::dump_json(
        &args.out,
        "fig19",
        "ransomware sanity check",
        &serde_json::json!({
            "attack_windows": [attack_start, attack_end],
            "deeprest_flagged_days": deeprest_days,
            "pattern_detector_flagged_days": pattern_days,
            "overall_score": sanity.overall.values(),
            "events": sanity.events,
        }),
    );
}
