//! Fig. 10: estimation under /composePost-dominated query traffic — twice
//! the historical volume, the growth concentrated on /composePost. CPU of
//! the ComposePostService and write IOps of the PostStorageMongoDB should
//! surge, and every traffic-aware estimator should see it coming;
//! resrc-aware DL cannot.

use deeprest_workload::TrafficShape;

use super::{mix_with, qualitative};
use crate::{Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    let mix = mix_with(&ctx.app, &[("/composePost", 0.55)]);
    let traffic = qualitative::one_day_query(ctx, mix, 2.0, TrafficShape::TwoPeak);
    qualitative::run_query(
        args,
        ctx,
        "fig10",
        "/composePost-dominated query (2x volume, growth on composePost)",
        &traffic,
    );
}
