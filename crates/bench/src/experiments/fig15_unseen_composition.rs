//! Fig. 15: CPU estimation under seen vs unseen API compositions (e.g. a
//! holiday shifting users from posting to reading).

use super::mix_with;
use super::sweeps::{run_cpu_sweep, Setting, REPEATS};
use crate::{Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    // Seen: the learning mix. Unseen: the paper's example of 10% compose /
    // 85% read / 5% upload, with small per-repeat perturbations.
    let seen = Setting {
        label: "seen composition (learning mix)".to_owned(),
        queries: (0..REPEATS)
            .map(|rep| {
                ctx.query_workload()
                    .with_seed(args.seed ^ (0x1500 + rep as u64))
                    .generate()
            })
            .collect(),
    };
    let unseen = Setting {
        label: "unseen composition (10% compose / 85% read / 5% upload)".to_owned(),
        queries: (0..REPEATS)
            .map(|rep| {
                let shift = 0.03 * (rep as f64 - 1.0);
                let mix = mix_with(
                    &ctx.app,
                    &[
                        ("/composePost", 0.10 + shift),
                        ("/readUserTimeline", 0.85 - shift),
                        ("/uploadMedia", 0.05),
                    ],
                );
                ctx.query_workload()
                    .with_mix(mix)
                    .with_seed(args.seed ^ (0x1510 + rep as u64))
                    .generate()
            })
            .collect(),
    };
    run_cpu_sweep(
        args,
        ctx,
        "fig15",
        "CPU estimation with unseen API compositions",
        &[seen, unseen],
    );
}
