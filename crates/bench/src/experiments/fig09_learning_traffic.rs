//! Fig. 9: the 7-day API traffic of the application-learning phase — two
//! peak-hours per day, three representative APIs highlighted.

use deeprest_sim::apps;
use deeprest_workload::WorkloadSpec;

use crate::{report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner(
        "fig09",
        "7-day application-learning API traffic (two peaks per day)",
    );
    let app = apps::social_network();
    let traffic = WorkloadSpec::new(args.users, app.default_mix())
        .with_days(args.days)
        .with_windows_per_day(args.windows_per_day)
        .with_seed(args.seed)
        .generate();

    println!(
        "  {} days x {} windows/day, {} users, {:.0} total requests",
        args.days,
        args.windows_per_day,
        args.users,
        traffic.grand_total()
    );
    for api in apps::REPRESENTATIVE_APIS {
        report::curve(api, &traffic.api_series(api), 96);
    }
    report::curve("total (all 11 APIs)", &traffic.total_series(), 96);

    let composition: Vec<(String, f64)> = traffic.composition();
    println!("  composition over the period:");
    for (api, frac) in &composition {
        println!("    {api:<20} {:5.1}%", frac * 100.0);
    }

    report::dump_json(
        &args.out,
        "fig09",
        "application-learning traffic",
        &serde_json::json!({
            "total": traffic.total_series().values(),
            "composition": composition,
        }),
    );
}
