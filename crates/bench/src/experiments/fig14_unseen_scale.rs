//! Fig. 14: CPU estimation under unseen scales of application users
//! (1x / 2x / 3x the learning-phase user base), worst case over repeated
//! queries with minor variations.

use super::sweeps::{run_cpu_sweep, Setting, REPEATS};
use crate::{Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    let settings: Vec<Setting> = [1.0, 2.0, 3.0]
        .iter()
        .map(|&scale| Setting {
            label: format!("{scale:.0}x users"),
            queries: (0..REPEATS)
                .map(|rep| {
                    // Minor variations: jitter the user count and the seed.
                    let jitter = 1.0 + 0.08 * (rep as f64 - 1.0);
                    ctx.query_workload()
                        .with_users(args.users * scale * jitter)
                        .with_seed(args.seed ^ (0x1400 + rep as u64))
                        .generate()
                })
                .collect(),
        })
        .collect();
    run_cpu_sweep(
        args,
        ctx,
        "fig14",
        "CPU estimation with unseen scales of application users",
        &settings,
    );
}
