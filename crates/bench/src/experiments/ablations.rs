//! Ablations of the design choices DESIGN.md calls out: the API-aware mask
//! (Eq. 1), the cross-component attention (Eq. 3), the linear skip path
//! (our documented architectural addition), and the mask L1 regularizer.
//! Each variant is trained identically and evaluated on an unseen
//! composition-shift query at 2x scale.

use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_metrics::eval::{interval_coverage, mape};
use deeprest_metrics::{MetricKey, ResourceKind};

use super::mix_with;
use crate::{filter_metrics, focus_scope, report, Args, ExpCtx};

/// Runs the ablation study.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (its learning data is reused; each
/// variant trains its own model).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "ablations",
        "architecture ablations: unseen same-scale, composition-shift and 3x-scale queries",
    );
    let scope = focus_scope(&ctx.app);
    let metrics = filter_metrics(&ctx.learn.metrics, &scope);

    let base = DeepRestConfig::default()
        .with_hidden(args.hidden)
        .with_epochs(args.epochs)
        .with_seed(args.seed)
        .with_scope(scope.clone());
    let variants: Vec<(&str, DeepRestConfig)> = vec![
        ("full model", base.clone()),
        ("- API-aware mask", {
            let mut c = base.clone();
            c.api_mask = false;
            c
        }),
        ("- cross-component attention", {
            let mut c = base.clone();
            c.attention = false;
            c
        }),
        ("- linear skip path", {
            let mut c = base.clone();
            c.linear_skip = false;
            c
        }),
        ("- mask L1 regularizer", {
            let mut c = base.clone();
            c.mask_l1 = 0.0;
            c
        }),
    ];

    // Three evaluation queries: an unseen same-scale day (where interval
    // calibration is meaningful), a composition shift, and a 3x scale
    // stress (where extrapolation machinery matters).
    let q_same = ctx
        .query_workload()
        .with_seed(args.seed ^ 0xab10)
        .generate();
    let mix = mix_with(
        &ctx.app,
        &[("/readUserTimeline", 0.70), ("/composePost", 0.08)],
    );
    let q_mix = ctx
        .query_workload()
        .with_users(args.users * 2.0)
        .with_mix(mix)
        .with_seed(args.seed ^ 0xab1a)
        .generate();
    let q_scale = ctx
        .query_workload()
        .with_users(args.users * 3.0)
        .with_seed(args.seed ^ 0xab1b)
        .generate();
    let t_same = ctx.ground_truth(&q_same);
    let t_mix = ctx.ground_truth(&q_mix);
    let t_scale = ctx.ground_truth(&q_scale);

    let eval_keys = [
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("UserTimelineService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
    ];
    let score = |model: &DeepRest, truth: &deeprest_sim::SimOutput| -> (f64, f64) {
        let est = model.estimate_from_traces(&truth.traces, &truth.interner);
        let mut mape_sum = 0.0;
        let mut cov_sum = 0.0;
        for key in &eval_keys {
            let actual = truth.metrics.get(key).expect("simulated");
            let pred = est.get(key).expect("in scope");
            mape_sum += mape(actual, &pred.expected);
            cov_sum += interval_coverage(actual, &pred.lower, &pred.upper);
        }
        (
            mape_sum / eval_keys.len() as f64,
            cov_sum / eval_keys.len() as f64,
        )
    };

    let mut json = Vec::new();
    println!(
        "  {:<28} {:>9} {:>9} {:>9} {:>9}   (MAPE / coverage over {} resources)",
        "variant",
        "1x MAPE",
        "1x cov",
        "mix MAPE",
        "3x MAPE",
        eval_keys.len()
    );
    for (label, config) in variants {
        let (model, rep) = DeepRest::fit(&ctx.learn.traces, &metrics, &ctx.learn.interner, config);
        let (m_same, cov_same) = score(&model, &t_same);
        let (m_mix, _) = score(&model, &t_mix);
        let (m_scale, _) = score(&model, &t_scale);
        println!(
            "  {label:<28} {m_same:8.2}% {:>8.0}% {m_mix:8.2}% {m_scale:8.2}%   (trained {:.0}s)",
            cov_same * 100.0,
            rep.train_seconds
        );
        json.push(serde_json::json!({
            "variant": label,
            "same_scale_mape": m_same,
            "same_scale_coverage": cov_same,
            "composition_shift_mape": m_mix,
            "scale_3x_mape": m_scale,
        }));
    }
    println!("  coverage target: the delta=0.90 interval should cover ~90% of windows on the in-scale day");
    report::dump_json(&args.out, "ablations", "architecture ablations", &json);
}
