//! Fig. 13: example one-day query API traffic for the three business
//! scenarios — unseen user scales, unseen API composition, unseen traffic
//! shape. Workload-only; no training involved.

use deeprest_sim::apps;
use deeprest_workload::{TrafficShape, WorkloadSpec};

use super::mix_with;
use crate::{report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner("fig13", "example query traffic for the three scenarios");
    let app = apps::social_network();
    let base = |users: f64| {
        WorkloadSpec::new(users, app.default_mix())
            .with_days(1)
            .with_windows_per_day(args.windows_per_day)
            .with_seed(args.seed ^ 0x13)
    };

    println!("  (a) unseen scales of application users:");
    for scale in [1.0, 2.0, 3.0] {
        let t = base(args.users * scale).generate();
        report::curve(&format!("{scale:.0}x users"), &t.total_series(), 96);
    }

    println!("\n  (b) unseen API composition (10% compose / 85% read / 5% upload):");
    let seen = base(args.users).generate();
    report::curve("seen mix: total", &seen.total_series(), 96);
    let unseen_mix = mix_with(
        &app,
        &[
            ("/composePost", 0.10),
            ("/readUserTimeline", 0.85),
            ("/uploadMedia", 0.05),
        ],
    );
    let unseen = base(args.users).with_mix(unseen_mix).generate();
    for api in apps::REPRESENTATIVE_APIS {
        report::curve(&format!("unseen mix: {api}"), &unseen.api_series(api), 96);
    }

    println!("\n  (c) unseen traffic shape (flat vs the learned two peaks):");
    let flat = base(args.users).with_shape(TrafficShape::Flat).generate();
    report::curve("two-peak (learned)", &seen.total_series(), 96);
    report::curve("flat (query)", &flat.total_series(), 96);

    report::dump_json(
        &args.out,
        "fig13",
        "example query traffic",
        &serde_json::json!({
            "scales": [1.0, 2.0, 3.0],
            "seen_total": seen.total_series().values(),
            "flat_total": flat.total_series().values(),
            "unseen_mix_composition": unseen.composition(),
        }),
    );
}
