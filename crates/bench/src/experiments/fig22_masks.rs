//! Fig. 22: interpreting the learned API-aware masks — which API endpoints
//! influence which resources. The paper's four examples: MediaMongoDB
//! memory (only /uploadMedia), ComposePostService CPU and
//! PostStorageMongoDB write IOps (only /composePost), and
//! PostStorageMongoDB CPU (/composePost *and* the timeline reads).

use deeprest_core::interpret;
use deeprest_metrics::{MetricKey, ResourceKind};

use crate::{report, Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "fig22",
        "learned API-aware masks: API -> resource dependencies",
    );
    let model = &ctx.estimators.deeprest;

    let targets = [
        MetricKey::new("MediaMongoDB", ResourceKind::Memory),
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
        MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu),
    ];

    let mut json = Vec::new();
    for key in &targets {
        let attribution = interpret::api_attribution(model, key).expect("expert in scope");
        println!("\n  {key}: normalized API influence");
        for (api, weight) in attribution.weights.iter().take(6) {
            let bar: String = "#".repeat((weight * 30.0).round() as usize);
            println!("    {api:<20} {weight:5.2} {bar}");
        }
        println!("    top invocation paths by mask weight:");
        for (path, w) in interpret::top_paths(model, key, 3).expect("expert in scope") {
            println!("      ({w:.2}) {path}");
        }
        json.push(serde_json::json!({
            "resource": key.to_string(),
            "weights": attribution.weights,
        }));
    }
    report::dump_json(&args.out, "fig22", "API-aware mask interpretation", &json);
}
