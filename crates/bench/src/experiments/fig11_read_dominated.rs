//! Fig. 11: estimation under /readTimeline-dominated query traffic. The
//! total volume matches Fig. 10, but reads do not touch the
//! ComposePostService at all and issue no writes on the PostStorageMongoDB:
//! simple scaling overestimates both, component-aware scaling fixes the CPU
//! but still overestimates the write IOps, and only DeepRest gets both
//! right.

use deeprest_workload::TrafficShape;

use super::{mix_with, qualitative};
use crate::{Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    let mix = mix_with(
        &ctx.app,
        &[("/readUserTimeline", 0.70), ("/composePost", 0.05)],
    );
    let traffic = qualitative::one_day_query(ctx, mix, 2.0, TrafficShape::TwoPeak);
    qualitative::run_query(
        args,
        ctx,
        "fig11",
        "/readTimeline-dominated query (2x volume, growth on readTimeline)",
        &traffic,
    );
}
