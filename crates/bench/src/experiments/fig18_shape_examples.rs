//! Fig. 18: the "2-peak/day → flat" shape change in detail. resrc-aware DL
//! keeps forecasting two peaks because that is all its history contains;
//! the traffic-connected estimators produce flat curves, and DeepRest also
//! gets the magnitude right.

use deeprest_workload::TrafficShape;

use super::qualitative;
use crate::{Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    let traffic = qualitative::one_day_query(ctx, ctx.app.default_mix(), 1.0, TrafficShape::Flat);
    qualitative::run_query(
        args,
        ctx,
        "fig18",
        "2-peak/day -> flat query traffic (same daily volume, flat shape)",
        &traffic,
    );
}
