//! Fig. 20: application sanity check identifying a cryptojacking attack —
//! a mining process steals CPU on the PostStorageMongoDB from day 5 noon
//! onward; benign pattern-violating days earlier in the period must not
//! trigger alarms.

use deeprest_baselines::day_profile;
use deeprest_core::sanity::{self, SanityConfig};
use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_sim::anomaly::CryptojackingAttack;

use super::checkdays::{build_check_traffic, flagged_days, pattern_detector_flags, DayKind};
use crate::{report, Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "fig20",
        "sanity check: cryptojacking on PostStorageMongoDB (mining from day 5 noon)",
    );
    let wpd = args.windows_per_day;
    let days = [
        DayKind::Normal,     // day 0
        DayKind::Normal,     // day 1
        DayKind::FlatHigh,   // day 2 (benign, the paper's 07/15 suspicion)
        DayKind::SinglePeak, // day 3 (benign, 07/16 suspicion)
        DayKind::Normal,     // day 4
        DayKind::Normal,     // day 5: mining starts at noon (07/18)
        DayKind::Normal,     // day 6
        DayKind::Normal,     // day 7
        DayKind::Normal,     // day 8
    ];
    let traffic = build_check_traffic(ctx, &days, 0x2000);

    let mining_start = 5 * wpd + wpd / 2;
    let attack = CryptojackingAttack::new("PostStorageMongoDB", mining_start, 8.0);
    let truth = ctx.ground_truth_with(&traffic, &[&attack]);

    let config = SanityConfig::default();
    let sanity = sanity::check(
        &ctx.estimators.deeprest,
        &truth.traces,
        &truth.interner,
        &truth.metrics,
        &config,
    );

    let cpu_key = MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu);
    println!("  PostStorageMongoDB CPU (actual vs DeepRest-expected interval):");
    report::curve("actual", truth.metrics.get(&cpu_key).unwrap(), 108);
    let est = sanity.estimates.get(&cpu_key).unwrap();
    report::curve("expected (median)", &est.expected, 108);
    report::curve("expected (upper)", &est.upper, 108);
    println!("\n  CPU anomaly score (1-D heatmap):");
    report::curve("deviation score", &sanity.per_resource[&cpu_key], 108);

    let deeprest_days = flagged_days(&sanity, wpd);
    let learned_profile = day_profile(
        ctx.learn
            .metrics
            .get(&cpu_key)
            .expect("learning metrics")
            .values(),
        wpd,
    );
    let pattern_days = pattern_detector_flags(
        truth.metrics.get(&cpu_key).unwrap(),
        &learned_profile,
        wpd,
        1.8,
    );
    println!(
        "\n  pattern-based detection flags days: {pattern_days:?} (pattern violations only; cannot tell benign shape changes from mining or localize its start)"
    );
    println!(
        "  DeepRest flags days:                {deeprest_days:?} (ground truth: mining runs from day 5 onward)"
    );

    println!("\n  interpretable alerts:");
    for event in &sanity.events {
        println!(
            "    Anomalous event: windows {}..{} (from day {}), peak score {:.2}",
            event.start_window,
            event.end_window,
            event.start_window / wpd,
            event.peak_score
        );
        for finding in event.findings.iter().take(6) {
            println!("      {finding}");
        }
    }

    report::dump_json(
        &args.out,
        "fig20",
        "cryptojacking sanity check",
        &serde_json::json!({
            "mining_start_window": mining_start,
            "deeprest_flagged_days": deeprest_days,
            "pattern_detector_flagged_days": pattern_days,
            "overall_score": sanity.overall.values(),
            "events": sanity.events,
        }),
    );
}
