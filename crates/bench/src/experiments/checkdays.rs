//! Shared machinery for the sanity-check experiments (Figs. 19-20): a
//! multi-day check period mixing benign-but-unusual days with an attack,
//! plus a naive pattern-based detector for the false-alarm comparison.

use deeprest_metrics::TimeSeries;
use deeprest_workload::{ApiTraffic, TrafficShape};

use crate::ExpCtx;

/// Per-day workload character in the check period.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DayKind {
    /// Normal two-peak day.
    Normal,
    /// Constantly high traffic (e.g. a viral event) — benign but violates
    /// the historical two-peak pattern.
    FlatHigh,
    /// One peak only — also benign, also pattern-violating.
    SinglePeak,
}

/// Builds a check-period traffic by concatenating one-day workloads.
pub(crate) fn build_check_traffic(ctx: &ExpCtx, days: &[DayKind], salt: u64) -> ApiTraffic {
    let mut out: Option<ApiTraffic> = None;
    for (d, kind) in days.iter().enumerate() {
        let spec = ctx
            .query_workload()
            .with_seed(ctx.args.seed ^ salt ^ (d as u64 * 131));
        let spec = match kind {
            DayKind::Normal => spec,
            DayKind::FlatHigh => spec
                .with_shape(TrafficShape::Flat)
                .with_users(ctx.args.users * 1.6),
            DayKind::SinglePeak => spec.with_shape(TrafficShape::SinglePeak),
        };
        let day = spec.generate();
        match &mut out {
            None => out = Some(day),
            Some(t) => t.extend(&day),
        }
    }
    out.expect("at least one day")
}

/// A naive detector standing in for "manual inspection or resrc-aware DL"
/// (§5.4): scores each day by how far its utilization deviates from the
/// historically learned day profile and flags days whose deviation exceeds
/// `factor` times the median day's. It cannot tell benign traffic changes
/// from attacks — any pattern violation is suspicious.
pub(crate) fn pattern_detector_flags(
    actual: &TimeSeries,
    learned_profile: &[f64],
    windows_per_day: usize,
    factor: f64,
) -> Vec<usize> {
    let days = actual.len() / windows_per_day;
    let profile = TimeSeries::from_values(learned_profile.to_vec());
    let scores: Vec<f64> = (0..days)
        .map(|d| {
            let day = actual.slice(d * windows_per_day..(d + 1) * windows_per_day);
            deeprest_metrics::eval::mape(&day, &profile)
        })
        .collect();
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > factor * median.max(1e-9))
        .map(|(d, _)| d)
        .collect()
}

/// Days touched by the report's debounced anomalous events.
pub(crate) fn flagged_days(
    report: &deeprest_core::sanity::SanityReport,
    windows_per_day: usize,
) -> Vec<usize> {
    let mut days: Vec<usize> = report
        .events
        .iter()
        .flat_map(|e| (e.start_window / windows_per_day)..=((e.end_window - 1) / windows_per_day))
        .collect();
    days.sort_unstable();
    days.dedup();
    days
}
