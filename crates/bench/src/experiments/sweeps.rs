//! Shared driver for the quantitative allocation sweeps (Figs. 14-16):
//! several query settings, repeated with minor variations, worst-case CPU
//! MAPE per estimator per component.

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_workload::ApiTraffic;

use crate::{report, Args, ExpCtx};

/// The four components of Figs. 14-16.
pub(crate) const SWEEP_COMPONENTS: [&str; 4] = [
    "FrontendNGINX",
    "ComposePostService",
    "UserTimelineService",
    "PostStorageMongoDB",
];

/// Number of repetitions per setting (the paper repeats each query nine
/// times with minor variations; three keeps CPU-only runs minutes-scale and
/// already exercises the worst-case aggregation).
pub(crate) const REPEATS: usize = 3;

/// One sweep setting: a label and one query traffic per repeat.
pub(crate) struct Setting {
    pub label: String,
    pub queries: Vec<ApiTraffic>,
}

/// Runs a sweep (possibly against a context trained on a non-default shape)
/// and prints worst-case CPU MAPE tables.
pub(crate) fn run_cpu_sweep(args: &Args, ctx: &ExpCtx, id: &str, title: &str, settings: &[Setting]) {
    report::banner(id, title);
    let mut json = Vec::new();

    for setting in settings {
        println!("\n  setting: {}", setting.label);
        // worst[estimator][component] = max MAPE across repeats.
        let mut worst: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for (rep, traffic) in setting.queries.iter().enumerate() {
            let truth = ctx.ground_truth(traffic);
            let initials = ctx.initials_from(&truth);
            let estimates = ctx.estimators.estimate_traffic(
                traffic,
                &initials,
                args.seed ^ (rep as u64 + 0x1400),
            );
            for comp in SWEEP_COMPONENTS {
                let key = MetricKey::new(comp, ResourceKind::Cpu);
                for (name, mape) in ctx.mape_table(&estimates, &truth, &key) {
                    let slot = worst
                        .entry(name)
                        .or_default()
                        .entry(comp.to_owned())
                        .or_insert(0.0);
                    *slot = slot.max(mape);
                }
            }
        }
        for comp in SWEEP_COMPONENTS {
            let rows: Vec<(String, f64)> = worst
                .iter()
                .map(|(name, by_comp)| (name.clone(), by_comp[comp]))
                .collect();
            report::mape_rows(&format!("{comp} CPU, worst of {REPEATS} repeats"), &rows);
        }
        json.push(serde_json::json!({
            "setting": setting.label,
            "worst_case_cpu_mape": worst,
        }));
    }
    report::dump_json(&args.out, id, title, &json);
}
