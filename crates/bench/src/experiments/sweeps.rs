//! Shared driver for the quantitative allocation sweeps (Figs. 14-16):
//! several query settings, repeated with minor variations, worst-case CPU
//! MAPE per estimator per component.

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_workload::ApiTraffic;

use crate::{report, Args, ExpCtx};

/// The four components of Figs. 14-16.
pub(crate) const SWEEP_COMPONENTS: [&str; 4] = [
    "FrontendNGINX",
    "ComposePostService",
    "UserTimelineService",
    "PostStorageMongoDB",
];

/// Number of repetitions per setting, matching the paper's nine queries
/// with minor variations. Repeats evaluate concurrently (the worst-case
/// fold is order-insensitive and each repeat is seeded independently), so
/// the full paper count stays minutes-scale on a multi-core machine.
pub(crate) const REPEATS: usize = 9;

/// One sweep setting: a label and one query traffic per repeat.
pub(crate) struct Setting {
    pub label: String,
    pub queries: Vec<ApiTraffic>,
}

/// Runs a sweep (possibly against a context trained on a non-default shape)
/// and prints worst-case CPU MAPE tables.
pub(crate) fn run_cpu_sweep(
    args: &Args,
    ctx: &ExpCtx,
    id: &str,
    title: &str,
    settings: &[Setting],
) {
    report::banner(id, title);
    let mut json = Vec::new();

    for setting in settings {
        println!("\n  setting: {}", setting.label);
        // Each repeat (simulate ground truth + estimate + score) is
        // independent; fan them out and fold in repeat order.
        let per_rep: Vec<Vec<(String, String, f64)>> =
            ctx.pool().map(setting.queries.len(), |rep| {
                let traffic = &setting.queries[rep];
                let truth = ctx.ground_truth(traffic);
                let initials = ctx.initials_from(&truth);
                let estimates = ctx.estimators.estimate_traffic(
                    traffic,
                    &initials,
                    args.seed ^ (rep as u64 + 0x1400),
                );
                let mut rows = Vec::new();
                for comp in SWEEP_COMPONENTS {
                    let key = MetricKey::new(comp, ResourceKind::Cpu);
                    for (name, mape) in ctx.mape_table(&estimates, &truth, &key) {
                        rows.push((name, comp.to_owned(), mape));
                    }
                }
                rows
            });
        // worst[estimator][component] = max MAPE across repeats.
        let mut worst: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for rows in per_rep {
            for (name, comp, mape) in rows {
                let slot = worst.entry(name).or_default().entry(comp).or_insert(0.0);
                *slot = slot.max(mape);
            }
        }
        for comp in SWEEP_COMPONENTS {
            let rows: Vec<(String, f64)> = worst
                .iter()
                .map(|(name, by_comp)| (name.clone(), by_comp[comp]))
                .collect();
            report::mape_rows(&format!("{comp} CPU, worst of {REPEATS} repeats"), &rows);
        }
        json.push(serde_json::json!({
            "setting": setting.label,
            "worst_case_cpu_mape": worst,
        }));
    }
    report::dump_json(&args.out, id, title, &json);
}
