//! §6 transfer learning: warm-starting a new application's experts from a
//! model trained on a different application. The paper's Fig. 21 analysis
//! motivates this ("convergence can be accelerated from strategically
//! selected initial parameters"); here we train the hotel reservation
//! system from scratch vs warm-started from the social network and compare
//! learning curves.

use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_sim::apps;
use deeprest_sim::engine::{simulate, SimConfig};
use deeprest_workload::WorkloadSpec;

use crate::{filter_metrics, focus_scope, report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner(
        "transfer",
        "transfer learning: social network -> hotel reservation warm start",
    );

    // Source: social network focus model.
    let social = apps::social_network();
    let social_traffic = WorkloadSpec::new(args.users, social.default_mix())
        .with_days(args.days)
        .with_windows_per_day(args.windows_per_day)
        .with_seed(args.seed)
        .generate();
    let social_learn = simulate(
        &social,
        &social_traffic,
        &SimConfig::default().with_seed(args.seed ^ 0xa5a5),
    );
    let social_scope = focus_scope(&social);
    let config = DeepRestConfig::default()
        .with_hidden(args.hidden)
        .with_epochs(args.epochs)
        .with_seed(args.seed);
    let (source, src_rep) = DeepRest::fit(
        &social_learn.traces,
        &filter_metrics(&social_learn.metrics, &social_scope),
        &social_learn.interner,
        config.clone().with_scope(social_scope),
    );
    println!(
        "  source model: {} social-network experts, final loss {:.4}",
        src_rep.expert_count,
        src_rep.epoch_losses.last().unwrap()
    );

    // Target: hotel reservation with a *short* learning budget, where a
    // good initialization matters most.
    let hotel = apps::hotel_reservation();
    let hotel_traffic = WorkloadSpec::new(args.users, hotel.default_mix())
        .with_days(2)
        .with_windows_per_day(args.windows_per_day)
        .with_seed(args.seed ^ 0x7001)
        .generate();
    let hotel_learn = simulate(
        &hotel,
        &hotel_traffic,
        &SimConfig::default().with_seed(args.seed ^ 0x7002),
    );
    let hotel_scope: Vec<MetricKey> = vec![
        MetricKey::new("FrontendService", ResourceKind::Cpu),
        MetricKey::new("SearchService", ResourceKind::Cpu),
        MetricKey::new("ProfileService", ResourceKind::Cpu),
        MetricKey::new("ReserveMongoDB", ResourceKind::WriteIops),
        MetricKey::new("ReserveMongoDB", ResourceKind::WriteThroughput),
        MetricKey::new("ReserveMongoDB", ResourceKind::Cpu),
    ];
    let hotel_metrics = filter_metrics(&hotel_learn.metrics, &hotel_scope);
    let short = config
        .clone()
        .with_epochs(8)
        .with_scope(hotel_scope.clone());

    let (_, cold) = DeepRest::fit(
        &hotel_learn.traces,
        &hotel_metrics,
        &hotel_learn.interner,
        short.clone(),
    );
    let (_, warm) = DeepRest::fit_transferred(
        &hotel_learn.traces,
        &hotel_metrics,
        &hotel_learn.interner,
        short,
        &source,
    );

    println!("\n  hotel-reservation learning curves (8 epochs, 2 learning days):");
    println!("    epoch   cold-start   warm-start");
    for (e, (c, w)) in cold
        .epoch_losses
        .iter()
        .zip(warm.epoch_losses.iter())
        .enumerate()
    {
        println!("    {e:>5} {c:>12.4} {w:>12.4}");
    }
    let c_final = *cold.epoch_losses.last().unwrap();
    let w_final = *warm.epoch_losses.last().unwrap();
    println!(
        "\n  final loss: cold {c_final:.4} vs warm {w_final:.4} ({})",
        if w_final < 0.95 * c_final {
            "warm start converges faster, as §6 anticipates"
        } else {
            "difference is marginal at this budget — Adam adapts quickly from any init; see EXPERIMENTS.md"
        }
    );
    report::dump_json(
        &args.out,
        "transfer",
        "transfer learning warm start",
        &serde_json::json!({
            "cold_epoch_losses": cold.epoch_losses,
            "warm_epoch_losses": warm.epoch_losses,
        }),
    );
}
