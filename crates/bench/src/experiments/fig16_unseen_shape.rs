//! Fig. 16: CPU estimation under unseen traffic shapes, both directions —
//! an application that learned two-peak days queried with flat traffic, and
//! an application that learned flat days queried with two-peak traffic.

use deeprest_workload::TrafficShape;

use super::sweeps::{run_cpu_sweep, Setting, REPEATS};
use crate::{Args, ExpCtx};

/// Runs the experiment (trains a second, flat-learning context for the
/// reverse direction).
pub fn run(args: &Args) {
    let two_peak_ctx = ExpCtx::social(args);
    run_with(args, &two_peak_ctx);

    let flat_ctx = ExpCtx::social_shaped(args, TrafficShape::Flat);
    run_reverse_with(args, &flat_ctx);
}

/// The "2-peak/day -> flat" direction against a two-peak-trained context.
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    let settings = [Setting {
        label: "2-peak/day -> flat".to_owned(),
        queries: (0..REPEATS)
            .map(|rep| {
                ctx.query_workload()
                    .with_shape(TrafficShape::Flat)
                    .with_seed(args.seed ^ (0x1600 + rep as u64))
                    .generate()
            })
            .collect(),
    }];
    run_cpu_sweep(
        args,
        ctx,
        "fig16a",
        "CPU estimation with unseen traffic shape (2-peak -> flat)",
        &settings,
    );
}

/// The "flat -> 2-peak/day" direction against a flat-trained context.
pub fn run_reverse_with(args: &Args, flat_ctx: &ExpCtx) {
    let settings = [Setting {
        label: "flat -> 2-peak/day".to_owned(),
        queries: (0..REPEATS)
            .map(|rep| {
                flat_ctx
                    .query_workload()
                    .with_shape(TrafficShape::TwoPeak)
                    .with_seed(args.seed ^ (0x1610 + rep as u64))
                    .generate()
            })
            .collect(),
    }];
    run_cpu_sweep(
        args,
        flat_ctx,
        "fig16b",
        "CPU estimation with unseen traffic shape (flat -> 2-peak)",
        &settings,
    );
}
