//! Fig. 17: the hotel reservation application — estimating FrontendService
//! CPU for 3x more users than ever, where the scaling baselines magnify
//! their small per-request errors into large overestimates.

use deeprest_metrics::{MetricKey, ResourceKind, TimeSeries};

use crate::{report, Args, ExpCtx};

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::hotel(args);
    run_with(args, &ctx);
}

/// Runs against a prepared hotel context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "fig17",
        "hotel reservation: FrontendService CPU with 3x more users than ever",
    );
    let traffic = ctx
        .query_workload()
        .with_users(args.users * 3.0)
        .with_seed(args.seed ^ 0x1700)
        .generate();
    let truth = ctx.ground_truth(&traffic);
    let initials = ctx.initials_from(&truth);
    let estimates = ctx
        .estimators
        .estimate_traffic(&traffic, &initials, args.seed ^ 0x1701);

    let key = MetricKey::new("FrontendService", ResourceKind::Cpu);
    let actual = truth.metrics.get(&key).expect("frontend simulated");

    println!("  (a) estimated vs actual CPU:");
    report::curve("actual", actual, 96);
    for (name, map) in &estimates {
        report::curve(name, &map[&key], 96);
    }

    println!("\n  (b) absolute percentage error over the day:");
    for (name, map) in &estimates {
        let ape: TimeSeries = actual
            .values()
            .iter()
            .zip(map[&key].values().iter())
            .map(|(a, e)| 100.0 * (a - e).abs() / a.abs().max(1e-9))
            .collect();
        report::curve(name, &ape, 96);
    }
    let rows = ctx.mape_table(&estimates, &truth, &key);
    report::mape_rows("FrontendService CPU", &rows);

    report::dump_json(
        &args.out,
        "fig17",
        "hotel reservation 3x users",
        &serde_json::json!({
            "actual": actual.values(),
            "estimates": estimates
                .iter()
                .map(|(n, m)| (n.clone(), m[&key].values().to_vec()))
                .collect::<std::collections::BTreeMap<_, _>>(),
            "mape": rows,
        }),
    );
}
