//! Table 1: trace-synthesizer quality across the six query settings. The
//! synthesized traces are compared against the ground-truth traces captured
//! by actually running each query, as per-window path-count vectors
//! aggregated to two-hour buckets (aggregation removes the Poisson arrival
//! noise that neither side can predict; the synthesizer only owes the
//! operator the right *distribution*).

use deeprest_core::{FeatureSpace, TraceSynthesizer};
use deeprest_metrics::eval::count_vector_accuracy;
use deeprest_sim::apps;
use deeprest_sim::engine::{simulate, SimConfig};
use deeprest_workload::{ApiTraffic, TrafficShape, WorkloadSpec};

use super::mix_with;
use crate::{report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner("table1", "trace synthesizer quality (six query settings)");
    let app = apps::social_network();
    let sim_cfg = SimConfig::default().with_seed(args.seed ^ 0xa5a5);

    let learn = |shape: TrafficShape| {
        let traffic = WorkloadSpec::new(args.users, app.default_mix())
            .with_days(args.days)
            .with_windows_per_day(args.windows_per_day)
            .with_seed(args.seed)
            .with_shape(shape)
            .generate();
        simulate(&app, &traffic, &sim_cfg)
    };
    let learn_two_peak = learn(TrafficShape::TwoPeak);
    let learn_flat = learn(TrafficShape::Flat);

    let query = |users: f64, mix: Vec<(String, f64)>, shape: TrafficShape, salt: u64| {
        WorkloadSpec::new(users, mix)
            .with_days(1)
            .with_windows_per_day(args.windows_per_day)
            .with_seed(args.seed ^ salt)
            .with_shape(shape)
            .generate()
    };
    let unseen_mix = mix_with(
        &app,
        &[
            ("/composePost", 0.10),
            ("/readUserTimeline", 0.85),
            ("/uploadMedia", 0.05),
        ],
    );

    // (scenario label, learning phase, query traffic).
    let settings: Vec<(&str, &deeprest_sim::engine::SimOutput, ApiTraffic)> = vec![
        (
            "unseen scale 1x",
            &learn_two_peak,
            query(args.users, app.default_mix(), TrafficShape::TwoPeak, 0x1a),
        ),
        (
            "unseen scale 2x",
            &learn_two_peak,
            query(
                args.users * 2.0,
                app.default_mix(),
                TrafficShape::TwoPeak,
                0x1b,
            ),
        ),
        (
            "unseen scale 3x",
            &learn_two_peak,
            query(
                args.users * 3.0,
                app.default_mix(),
                TrafficShape::TwoPeak,
                0x1c,
            ),
        ),
        (
            "unseen API composition",
            &learn_two_peak,
            query(args.users, unseen_mix, TrafficShape::TwoPeak, 0x1d),
        ),
        (
            "2-peak/day -> flat",
            &learn_two_peak,
            query(args.users, app.default_mix(), TrafficShape::Flat, 0x1e),
        ),
        (
            "flat -> 2-peak/day",
            &learn_flat,
            query(args.users, app.default_mix(), TrafficShape::TwoPeak, 0x1f),
        ),
    ];

    let bucket = (args.windows_per_day / 12).max(1); // Two-hour buckets.
    let mut json = Vec::new();
    println!("  {:<28} {:>14}", "query scenario", "synthesis qual.");
    for (label, learn_out, traffic) in settings {
        let space = FeatureSpace::construct(&learn_out.traces);
        let synth = TraceSynthesizer::learn(&learn_out.traces);

        // Ground truth: actually run the query.
        let truth = simulate(
            &app,
            &traffic,
            &sim_cfg.clone().with_seed(sim_cfg.seed ^ 0x77),
        );
        let synthetic = synth.synthesize(&traffic, &learn_out.interner, args.seed ^ 0x42);

        let actual_features = bucketize(&space.extract_all(&truth.traces), bucket);
        let synth_features = bucketize(&space.extract_all(&synthetic), bucket);
        let accuracy = count_vector_accuracy(&actual_features, &synth_features);
        println!("  {label:<28} {accuracy:13.2}%");
        json.push(serde_json::json!({ "scenario": label, "accuracy_pct": accuracy }));
    }
    report::dump_json(&args.out, "table1", "trace synthesizer quality", &json);
}

/// Sums consecutive `bucket`-sized groups of per-window count vectors.
fn bucketize(windows: &[Vec<f32>], bucket: usize) -> Vec<Vec<f64>> {
    windows
        .chunks(bucket)
        .map(|chunk| {
            let dim = chunk.first().map_or(0, Vec::len);
            let mut acc = vec![0.0f64; dim];
            for w in chunk {
                for (a, &v) in acc.iter_mut().zip(w.iter()) {
                    *a += f64::from(v);
                }
            }
            acc
        })
        .collect()
}
