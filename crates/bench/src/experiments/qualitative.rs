//! Shared driver for the qualitative curve experiments (Figs. 10, 11, 18):
//! one query traffic pattern, two spotlight resources, four estimators.

use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_workload::{ApiTraffic, TrafficShape};

use crate::{report, Args, ExpCtx};

/// The two spotlight resources of Figs. 10/11/18.
pub(crate) fn spotlight_keys() -> [MetricKey; 2] {
    [
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
    ]
}

/// Runs one qualitative comparison: prints the query traffic, then per
/// spotlight resource the actual curve, each estimator's curve, and the
/// MAPE table; dumps everything as JSON.
pub(crate) fn run_query(args: &Args, ctx: &ExpCtx, id: &str, title: &str, traffic: &ApiTraffic) {
    report::banner(id, title);
    println!("  query traffic ({} windows):", traffic.window_count());
    for api in ["/composePost", "/readUserTimeline", "/uploadMedia"] {
        if traffic.api_index(api).is_some() {
            report::curve(api, &traffic.api_series(api), 96);
        }
    }
    report::curve("total", &traffic.total_series(), 96);

    let truth = ctx.ground_truth(traffic);
    let initials = ctx.initials_from(&truth);
    let estimates = ctx
        .estimators
        .estimate_traffic(traffic, &initials, args.seed ^ 0x51);

    let mut json = serde_json::Map::new();
    for key in spotlight_keys() {
        println!("\n  {key}:");
        let actual = truth.metrics.get(&key).expect("spotlight key simulated");
        report::curve("actual", actual, 96);
        for (name, map) in &estimates {
            report::curve(name, &map[&key], 96);
        }
        let rows = ctx.mape_table(&estimates, &truth, &key);
        report::mape_rows(&format!("{key} estimation error"), &rows);

        json.insert(
            key.to_string(),
            serde_json::json!({
                "actual": actual.values(),
                "estimates": estimates
                    .iter()
                    .map(|(n, m)| (n.clone(), m[&key].values().to_vec()))
                    .collect::<std::collections::BTreeMap<_, _>>(),
                "mape": rows,
            }),
        );
    }
    report::dump_json(&args.out, id, title, &json);
}

/// Builds a one-day query with the given mix/scale/shape on top of the
/// context's workload defaults.
pub(crate) fn one_day_query(
    ctx: &ExpCtx,
    mix: Vec<(String, f64)>,
    user_scale: f64,
    shape: TrafficShape,
) -> ApiTraffic {
    ctx.query_workload()
        .with_mix(mix)
        .with_users(ctx.args.users * user_scale)
        .with_shape(shape)
        .generate()
}
