//! Fig. 12: estimation-quality heatmaps — four components x five resource
//! types x four estimators, under a mixed unseen query (volume growth plus
//! composition shift). IOps/throughput/disk rows only exist on stateful
//! components; the memory row is DeepRest's known weak spot (cache
//! dynamics, §6 future work).

use std::collections::BTreeMap;

use deeprest_metrics::{MetricKey, ResourceKind};

use super::mix_with;
use crate::{report, Args, ExpCtx};

const COMPONENTS: [&str; 4] = [
    "FrontendNGINX",
    "ComposePostService",
    "UserTimelineService",
    "PostStorageMongoDB",
];

/// Runs the experiment.
pub fn run(args: &Args) {
    let ctx = ExpCtx::social(args);
    run_with(args, &ctx);
}

/// Runs against a prepared context (shared with `run_all`).
pub fn run_with(args: &Args, ctx: &ExpCtx) {
    report::banner(
        "fig12",
        "estimation quality heatmaps (4 components x 5 resources x 4 estimators)",
    );
    // Mixed unseen query: 1.5x volume with a composition shift.
    let mix = mix_with(
        &ctx.app,
        &[("/composePost", 0.35), ("/readUserTimeline", 0.40)],
    );
    let traffic = ctx
        .query_workload()
        .with_users(args.users * 1.5)
        .with_mix(mix)
        .with_seed(args.seed ^ 0x1200)
        .generate();
    let truth = ctx.ground_truth(&traffic);
    let initials = ctx.initials_from(&truth);
    let estimates = ctx
        .estimators
        .estimate_traffic(&traffic, &initials, args.seed ^ 0x1201);

    let resources = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::WriteIops,
        ResourceKind::WriteThroughput,
        ResourceKind::DiskUsage,
    ];
    let resource_labels: Vec<&str> = resources.iter().map(|r| r.label()).collect();

    let mut json = BTreeMap::new();
    for (name, map) in &estimates {
        let mut cells: BTreeMap<(String, String), f64> = BTreeMap::new();
        for comp in COMPONENTS {
            let stateful = ctx.app.component(comp).expect("known component").stateful;
            for &resource in &resources {
                if resource.stateful_only() && !stateful {
                    continue;
                }
                let key = MetricKey::new(comp, resource);
                let actual = truth.metrics.get(&key).expect("simulated");
                let mape = deeprest_metrics::eval::mape(actual, &map[&key]);
                cells.insert((comp.to_owned(), resource.label().to_owned()), mape);
            }
        }
        println!();
        report::heatmap(
            &format!("{name} (MAPE per cell)"),
            &COMPONENTS,
            &resource_labels,
            &cells,
        );
        json.insert(
            name.clone(),
            cells
                .into_iter()
                .map(|((c, r), m)| (format!("{c}/{r}"), m))
                .collect::<BTreeMap<String, f64>>(),
        );
    }
    report::dump_json(&args.out, "fig12", "estimation quality heatmaps", &json);
}
