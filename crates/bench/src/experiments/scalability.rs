//! §6 scalability: per-expert model size, training time and inference time,
//! and how inference cost scales with the feature-space dimensionality.
//!
//! The paper reports 801.5 kB per expert, 5.4 s training per expert,
//! 1.589 ms inference per expert per day, and sublinear scaling in the
//! input dimensionality (10x -> 1.08x, 100x -> 1.21x) thanks to GPU
//! parallelism. Our backend is scalar CPU code, so the *absolute* numbers
//! and the dimensionality scaling differ (CPU mat-vec is linear in the
//! dimension); the per-expert size and the millisecond-scale inference
//! shape hold.

use std::time::Instant;

use deeprest_core::{DeepRest, DeepRestConfig};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_trace::window::WindowedTraces;
use deeprest_trace::{Interner, SpanNode, Trace};

use crate::{report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner(
        "scalability",
        "model size, training and inference cost (§6)",
    );

    // Synthetic single-component dataset with a controllable feature count:
    // `dim` distinct operations = `dim` invocation paths.
    let build = |dim: usize, windows: usize| -> (Interner, WindowedTraces, MetricsRegistry) {
        let mut interner = Interner::new();
        let comp = interner.intern("Svc");
        let api = interner.intern("/api");
        let ops: Vec<_> = (0..dim)
            .map(|i| interner.intern(&format!("op{i}")))
            .collect();
        let mut traces = WindowedTraces::with_windows(1.0, windows);
        let mut cpu = TimeSeries::zeros(0);
        for t in 0..windows {
            let mut load = 0.0;
            for (i, &op) in ops.iter().enumerate() {
                // Each path fires on a simple deterministic schedule.
                let count = ((t + i) % 5) as f64;
                for _ in 0..count as usize {
                    traces.windows[t].push(Trace::new(api, SpanNode::leaf(comp, op)));
                }
                load += count;
            }
            cpu.push(2.0 + 0.3 * load);
        }
        let mut metrics = MetricsRegistry::new();
        metrics.insert(MetricKey::new("Svc", ResourceKind::Cpu), cpu);
        (interner, traces, metrics)
    };

    // One-expert baseline at the benchmark's typical dimensionality.
    let base_dim = 64;
    let windows = args.windows_per_day; // One day.
    let config = DeepRestConfig::default()
        .with_hidden(args.hidden)
        .with_epochs(args.epochs)
        .with_seed(args.seed);
    let (interner, traces, metrics) = build(base_dim, windows * 2);
    let (model, rep) = DeepRest::fit(&traces, &metrics, &interner, config.clone());

    println!(
        "  per-expert accounting (hidden={} dim={base_dim}):",
        args.hidden
    );
    println!(
        "    model size            {:>10.1} kB   (paper: 801.5 kB at hidden=128)",
        model.model_size_bytes() as f64 / rep.expert_count as f64 / 1000.0
    );
    println!(
        "    training time         {:>10.2} s    (paper: 5.4 s)",
        rep.train_seconds / rep.expert_count as f64
    );

    let one_day = traces.slice(0..windows);
    let t0 = Instant::now();
    let _ = model.estimate_from_traces(&one_day, &interner);
    let infer_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "    inference (1 day)      {:>10.3} ms   (paper: 1.589 ms on GPU)",
        infer_ms / rep.expert_count as f64
    );

    // Dimensionality scaling: 1x, 10x, 100x the base feature count.
    println!(
        "\n  inference time vs feature dimensionality (paper: 10x -> 1.08x, 100x -> 1.21x on GPU):"
    );
    let mut json_dims = Vec::new();
    let mut base_time = None;
    for factor in [1usize, 10, 100] {
        let dim = base_dim * factor;
        let (i2, t2, m2) = build(dim, windows);
        let quick = config.clone().with_epochs(1);
        let (m, _) = DeepRest::fit(&t2, &m2, &i2, quick);
        // Warm up once, then measure.
        let _ = m.estimate_from_traces(&t2, &i2);
        let t0 = Instant::now();
        let _ = m.estimate_from_traces(&t2, &i2);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let ratio = match base_time {
            None => {
                base_time = Some(ms);
                1.0
            }
            Some(b) => ms / b,
        };
        println!("    dim {dim:>6} ({factor:>3}x): {ms:>9.2} ms  ({ratio:5.2}x)");
        json_dims.push(serde_json::json!({ "dim": dim, "ms": ms, "ratio": ratio }));
    }
    println!(
        "    (scalar CPU backend: cost grows with dim; the paper's sublinearity is a GPU effect)"
    );

    report::dump_json(
        &args.out,
        "scalability",
        "model size / training / inference scaling",
        &serde_json::json!({
            "per_expert_kb": model.model_size_bytes() as f64 / rep.expert_count as f64 / 1000.0,
            "train_seconds_per_expert": rep.train_seconds / rep.expert_count as f64,
            "inference_ms_per_expert_day": infer_ms / rep.expert_count as f64,
            "dim_scaling": json_dims,
        }),
    );
}
