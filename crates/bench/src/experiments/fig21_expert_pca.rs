//! Fig. 21: PCA of the experts' application-independent GRU parameters.
//! Experts responsible for MongoDB components should form a cluster even
//! though they serve different roles — the paper's transfer-learning
//! motivation. We train a wider swarm (all six MongoDB stores plus six
//! services) and report both the 2-D projection and a quantitative
//! clustering measure (mean pairwise distance within MongoDB experts vs
//! across all experts).

use deeprest_core::{interpret, DeepRest, DeepRestConfig};
use deeprest_metrics::{MetricKey, ResourceKind};
use deeprest_sim::apps;
use deeprest_sim::engine::{simulate, SimConfig};
use deeprest_workload::WorkloadSpec;

use crate::{filter_metrics, report, Args};

/// Runs the experiment.
pub fn run(args: &Args) {
    report::banner(
        "fig21",
        "PCA of expert GRU parameters (MongoDB experts cluster)",
    );
    let app = apps::social_network();
    let traffic = WorkloadSpec::new(args.users, app.default_mix())
        .with_days(args.days)
        .with_windows_per_day(args.windows_per_day)
        .with_seed(args.seed)
        .generate();
    let sim_cfg = SimConfig::default().with_seed(args.seed ^ 0xa5a5);
    let learn = simulate(&app, &traffic, &sim_cfg);

    // A wider swarm: all resources of every MongoDB store + the CPU/memory
    // of six services.
    let mut scope: Vec<MetricKey> = Vec::new();
    for comp in app.components.iter().filter(|c| c.stateful) {
        for &r in ResourceKind::for_component(true) {
            scope.push(MetricKey::new(&comp.name, r));
        }
    }
    for comp in [
        "FrontendNGINX",
        "ComposePostService",
        "UserTimelineService",
        "HomeTimelineService",
        "SocialGraphService",
        "TextService",
    ] {
        for &r in ResourceKind::for_component(false) {
            scope.push(MetricKey::new(comp, r));
        }
    }

    let config = DeepRestConfig::default()
        .with_hidden(args.hidden)
        .with_epochs(args.epochs)
        .with_seed(args.seed)
        .with_scope(scope.clone());
    let (model, rep) = DeepRest::fit(
        &learn.traces,
        &filter_metrics(&learn.metrics, &scope),
        &learn.interner,
        config,
    );
    println!(
        "  trained {} experts in {:.1}s",
        rep.expert_count, rep.train_seconds
    );

    let pca = interpret::expert_pca(&model, 2);
    println!(
        "  explained variance: PC1 {:.1}%  PC2 {:.1}%",
        pca.explained_variance_ratio[0] * 100.0,
        pca.explained_variance_ratio[1] * 100.0
    );
    println!("\n  2-D projection (x = PC1, y = PC2):");
    for p in &pca.projections {
        let tag = if p.key.component.contains("MongoDB") {
            "M"
        } else {
            "."
        };
        println!(
            "    [{tag}] {:<42} ({:9.3}, {:9.3})",
            p.key.to_string(),
            p.coords[0],
            p.coords[1]
        );
    }

    let is_mongo = |k: &MetricKey| k.component.contains("MongoDB");
    let mongo_dist = pca.mean_pairwise_distance(is_mongo);
    let all_dist = pca.mean_pairwise_distance(|_| true);
    println!("\n  clustering (mean pairwise distance; lower = tighter):");
    println!("    all experts                {all_dist:8.3}");
    println!(
        "    MongoDB experts            {mongo_dist:8.3}  (paper's grouping; ratio {:.2})",
        mongo_dist / all_dist.max(1e-12)
    );
    let mut by_resource = Vec::new();
    for resource in ResourceKind::ALL {
        let d = pca.mean_pairwise_distance(|k| k.resource == resource);
        println!(
            "    all {:<22} {d:8.3}  (ratio {:.2})",
            format!("{resource} experts"),
            d / all_dist.max(1e-12)
        );
        by_resource.push((resource.label(), d));
    }
    println!(
        "  => experts that learned similar remember/forget dynamics cluster. In this\n     substrate the dominant grouping is the resource type (CPU experts are the\n     tightest); the paper's MongoDB grouping reflects its 5-second-window store\n     dynamics — see EXPERIMENTS.md for the discussion."
    );

    report::dump_json(
        &args.out,
        "fig21",
        "expert PCA",
        &serde_json::json!({
            "explained_variance_ratio": pca.explained_variance_ratio,
            "projections": pca.projections,
            "mongo_mean_pairwise_distance": mongo_dist,
            "all_mean_pairwise_distance": all_dist,
            "by_resource_mean_pairwise_distance": by_resource,
        }),
    );
}
