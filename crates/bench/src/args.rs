//! Minimal command-line argument parsing shared by all experiment binaries.

/// Parsed experiment options.
#[derive(Clone, Debug)]
pub struct Args {
    /// Master seed; all other seeds derive from it.
    pub seed: u64,
    /// Concurrent users during application learning.
    pub users: f64,
    /// Learning days.
    pub days: usize,
    /// Scrape windows per day.
    pub windows_per_day: usize,
    /// GRU hidden units.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Train the full expert swarm (all resources) instead of the Fig. 8
    /// focus set.
    pub full: bool,
    /// Use the paper's SGD optimizer instead of Adam.
    pub paper_sgd: bool,
    /// Worker threads for training, prediction and repeated queries.
    /// `None` defers to `DEEPREST_THREADS` / the available parallelism;
    /// any value yields bit-identical results (`1` forces serial runs).
    pub threads: Option<usize>,
    /// Telemetry sink spec (`off`, `memory`, `jsonl`, `jsonl:<path>`).
    /// `None` defers to the `DEEPREST_TELEMETRY` env var. The bare
    /// `on`/`1`/`jsonl` forms resolve to `<out>/telemetry.jsonl` when
    /// installed by [`Args::parse`].
    pub telemetry: Option<String>,
    /// Output directory for JSON result dumps.
    pub out: String,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            seed: 17,
            users: 120.0,
            days: 7,
            windows_per_day: 96,
            hidden: 32,
            epochs: 30,
            full: false,
            paper_sgd: false,
            threads: None,
            telemetry: None,
            out: "target/experiments".to_owned(),
        }
    }
}

impl Args {
    /// Parses `std::env::args`, exiting with usage on malformed input, and
    /// installs the telemetry sink when `--telemetry` was given (the bare
    /// `on`/`1`/`jsonl` forms write to `<out>/telemetry.jsonl`).
    pub fn parse() -> Self {
        let args = Self::parse_from(std::env::args().skip(1));
        args.install_telemetry();
        args
    }

    /// Resolves and installs the `--telemetry` spec, if any. Separate from
    /// parsing so [`Args::parse_from`] stays side-effect free for tests.
    pub fn install_telemetry(&self) {
        let Some(spec) = &self.telemetry else { return };
        // Route the bare "enable" spellings into the run's output directory
        // so the JSONL lands next to the experiment dumps.
        let resolved = match spec.trim() {
            "1" | "on" | "true" | "jsonl" => format!("jsonl:{}/telemetry.jsonl", self.out),
            other => other.to_owned(),
        };
        if let Err(err) = deeprest_telemetry::install(&resolved) {
            panic!("--telemetry {spec}: {err}");
        }
    }

    /// Parses an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or unparsable values.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--seed" => out.seed = value("--seed").parse().expect("--seed u64"),
                "--users" => out.users = value("--users").parse().expect("--users f64"),
                "--days" => out.days = value("--days").parse().expect("--days usize"),
                "--windows-per-day" => {
                    out.windows_per_day = value("--windows-per-day")
                        .parse()
                        .expect("--windows-per-day usize");
                }
                "--hidden" => out.hidden = value("--hidden").parse().expect("--hidden usize"),
                "--epochs" => out.epochs = value("--epochs").parse().expect("--epochs usize"),
                "--full" => out.full = true,
                "--paper-sgd" => out.paper_sgd = true,
                "--threads" => {
                    out.threads = Some(value("--threads").parse().expect("--threads usize"));
                }
                "--telemetry" => out.telemetry = Some(value("--telemetry")),
                "--out" => out.out = value("--out"),
                other => panic!("unknown flag {other}; see crate docs for usage"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_when_empty() {
        let a = Args::parse_from(strs(&[]));
        assert_eq!(a.seed, 17);
        assert_eq!(a.windows_per_day, 96);
        assert!(!a.full);
    }

    #[test]
    fn parses_flags() {
        let a = Args::parse_from(strs(&[
            "--seed", "5", "--users", "300", "--full", "--hidden", "64", "--out", "/tmp/x",
        ]));
        assert_eq!(a.seed, 5);
        assert_eq!(a.users, 300.0);
        assert!(a.full);
        assert_eq!(a.hidden, 64);
        assert_eq!(a.out, "/tmp/x");
        assert_eq!(a.threads, None);
    }

    #[test]
    fn parses_threads() {
        let a = Args::parse_from(strs(&["--threads", "4"]));
        assert_eq!(a.threads, Some(4));
    }

    #[test]
    fn parses_telemetry_without_installing() {
        let a = Args::parse_from(strs(&["--telemetry", "memory"]));
        assert_eq!(a.telemetry.as_deref(), Some("memory"));
        // parse_from has no side effects: the global sink is untouched.
        let b = Args::parse_from(strs(&[]));
        assert_eq!(b.telemetry, None);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        let _ = Args::parse_from(strs(&["--bogus"]));
    }
}
