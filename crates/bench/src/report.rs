//! Terminal and JSON reporting for the experiment binaries.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use deeprest_metrics::TimeSeries;

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints one labelled sparkline "curve" (our terminal stand-in for the
/// paper's line plots), with min/mean/max annotations.
pub fn curve(label: &str, series: &TimeSeries, width: usize) {
    println!(
        "  {label:<26} {}  [min {:8.2}  mean {:8.2}  max {:8.2}]",
        series.sparkline(width),
        series.min(),
        series.mean(),
        series.max()
    );
}

/// Prints a MAPE comparison row set: one row per estimator.
pub fn mape_rows(target: &str, rows: &[(String, f64)]) {
    println!("  {target}");
    let best = rows.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    for (name, mape) in rows {
        let marker = if (*mape - best).abs() < 1e-9 {
            "  <-- best"
        } else {
            ""
        };
        println!("    {name:<18} MAPE {mape:7.2}%{marker}");
    }
}

/// A ready-to-serialize experiment record.
#[derive(serde::Serialize)]
pub struct ExperimentRecord<'a, T: serde::Serialize> {
    /// Experiment id, e.g. `fig14`.
    pub id: &'a str,
    /// Human title.
    pub title: &'a str,
    /// Arbitrary result payload.
    pub results: T,
}

/// Writes an experiment record as pretty JSON under `out_dir/<id>.json`.
///
/// Failures are reported to stderr but never abort the experiment (results
/// were already printed).
pub fn dump_json<T: serde::Serialize>(out_dir: &str, id: &str, title: &str, results: &T) {
    let record = ExperimentRecord { id, title, results };
    let path = Path::new(out_dir).join(format!("{id}.json"));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(&record).map_err(std::io::Error::other)?;
        f.write_all(json.as_bytes())
    };
    match write() {
        Ok(()) => {
            deeprest_telemetry::counter("bench.figure_dumps", 1);
            println!("  [results written to {}]", path.display());
        }
        Err(e) => eprintln!("  [warning: could not write {}: {e}]", path.display()),
    }
}

/// Renders a grid of MAPE values as the Fig. 12-style heatmap, one row per
/// resource, one column per component, with a coarse glyph scale:
/// `#` ≤10%, `+` ≤20%, `o` ≤40%, `x` ≤80%, `X` >80%, `.` not applicable.
pub fn heatmap(
    title: &str,
    components: &[&str],
    resources: &[&str],
    cells: &BTreeMap<(String, String), f64>,
) {
    println!("  {title}");
    print!("    {:<18}", "");
    for c in components {
        print!("{:<22}", c);
    }
    println!();
    for r in resources {
        print!("    {r:<18}");
        for c in components {
            match cells.get(&((*c).to_owned(), (*r).to_owned())) {
                Some(m) => print!("{:<22}", format!("{} {:6.1}%", glyph(*m), m)),
                None => print!("{:<22}", ".  (n/a)"),
            }
        }
        println!();
    }
    println!("    scale: # <=10%  + <=20%  o <=40%  x <=80%  X >80%");
}

fn glyph(mape: f64) -> char {
    match mape {
        m if m <= 10.0 => '#',
        m if m <= 20.0 => '+',
        m if m <= 40.0 => 'o',
        m if m <= 80.0 => 'x',
        _ => 'X',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyph_scale_is_monotone() {
        assert_eq!(glyph(5.0), '#');
        assert_eq!(glyph(15.0), '+');
        assert_eq!(glyph(30.0), 'o');
        assert_eq!(glyph(60.0), 'x');
        assert_eq!(glyph(150.0), 'X');
    }

    #[test]
    fn dump_json_writes_file() {
        let dir = std::env::temp_dir().join("deeprest-report-test");
        let dir_s = dir.to_string_lossy().to_string();
        dump_json(&dir_s, "t1", "test", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(dir.join("t1.json")).unwrap();
        assert!(content.contains("\"id\": \"t1\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
