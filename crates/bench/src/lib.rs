//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5-§6).
//!
//! Each figure/table has a dedicated binary in `src/bin/` (see DESIGN.md's
//! per-experiment index). All binaries share this harness: it builds the
//! simulated application, generates the 7-day application-learning workload
//! (Fig. 9), trains DeepRest and the three baselines, runs queries through
//! all four estimators uniformly, and prints paper-style rows plus ASCII
//! sparkline "figures". Every binary accepts:
//!
//! ```text
//! --seed N             master seed                        (default 17)
//! --users N            learning-phase concurrent users    (default 120)
//! --days N             learning days                      (default 7)
//! --windows-per-day N  scrape windows per day             (default 96)
//! --hidden N           GRU hidden units                   (default 32)
//! --epochs N           training epochs                    (default 30)
//! --full               full expert swarm (all resources, slower)
//! --paper-sgd          the paper's SGD optimizer instead of Adam
//! --threads N          worker threads (default DEEPREST_THREADS / all cores;
//!                      results are bit-identical at any setting)
//! --telemetry SPEC     telemetry sink: off | memory | jsonl | jsonl:<path>
//!                      (bare "jsonl"/"on"/"1" writes <out>/telemetry.jsonl;
//!                      default: the DEEPREST_TELEMETRY env var)
//! --out PATH           JSON result dump directory (default target/experiments)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod harness;
pub mod report;

pub use args::Args;
pub use harness::{filter_metrics, focus_scope, EstimatorSet, ExpCtx};
