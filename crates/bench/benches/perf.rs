//! Criterion micro/macro benchmarks backing the paper's §6 scalability
//! discussion: feature extraction, trace synthesis, expert training and
//! inference cost, and the autodiff primitives underneath.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deeprest_adapt::{AdaptConfig, AdaptivePipeline};
use deeprest_core::adapt::{OnlineUpdater, TrainSegment, UpdateConfig};
use deeprest_core::{DeepRest, DeepRestConfig, FeatureSpace, TraceSynthesizer};
use deeprest_fault::{self as fault, FaultPlan};
use deeprest_metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest_nn::loss::quantiles_for;
use deeprest_nn::{AnalyticTrainer, ExpertSpec, GruCell, Linear, TrainerConfig};
use deeprest_scale::{
    ScaleLoop, ScaleLoopConfig, Scenario, ScenarioKind, TargetUtilizationPolicy,
    PROACTIVE_TARGET_UTILIZATION,
};
use deeprest_serve::{
    OverloadConfig, Pipeline, SchedConfig, ServeConfig, TenantConfig, TenantRegistry,
};
use deeprest_tensor::{kernel, linalg, Graph, ParamStore, Pool, Tensor};
use deeprest_trace::window::{TimestampedTrace, WindowedTraces};
use deeprest_trace::{Interner, SpanNode, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a synthetic one-component dataset with `dim` invocation paths.
fn synthetic(dim: usize, windows: usize) -> (Interner, WindowedTraces, MetricsRegistry) {
    let mut interner = Interner::new();
    let comp = interner.intern("Svc");
    let api = interner.intern("/api");
    let ops: Vec<_> = (0..dim)
        .map(|i| interner.intern(&format!("op{i}")))
        .collect();
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut cpu = TimeSeries::zeros(0);
    for t in 0..windows {
        let mut load = 0.0;
        for (i, &op) in ops.iter().enumerate() {
            let count = (t + i) % 4;
            for _ in 0..count {
                traces.windows[t].push(Trace::new(api, SpanNode::leaf(comp, op)));
            }
            load += count as f64;
        }
        cpu.push(2.0 + 0.3 * load);
    }
    let mut metrics = MetricsRegistry::new();
    metrics.insert(MetricKey::new("Svc", ResourceKind::Cpu), cpu);
    (interner, traces, metrics)
}

fn quick_config() -> DeepRestConfig {
    DeepRestConfig::default().with_hidden(32).with_epochs(2)
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(20);
    for dim in [16usize, 64, 256] {
        let (_, traces, _) = synthetic(dim, 32);
        let space = FeatureSpace::construct(&traces);
        group.bench_with_input(BenchmarkId::new("window", dim), &dim, |b, _| {
            b.iter(|| space.extract(traces.window(7)));
        });
    }
    group.finish();
}

fn bench_trace_synthesis(c: &mut Criterion) {
    let (interner, traces, _) = synthetic(32, 32);
    let synth = TraceSynthesizer::learn(&traces);
    let api = interner.get("/api").expect("interned");
    let mut group = c.benchmark_group("trace_synthesis");
    group.sample_size(20);
    for n in [100u64, 1_000] {
        group.bench_with_input(BenchmarkId::new("requests", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| synth.synthesize_api(api, n, &mut rng));
        });
    }
    group.finish();
}

fn bench_expert_training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_training");
    group.sample_size(10);
    let (interner, traces, metrics) = synthetic(64, 96);
    group.bench_function("fit_2_epochs_dim64", |b| {
        b.iter(|| DeepRest::fit(&traces, &metrics, &interner, quick_config()));
    });
    group.finish();
}

fn bench_expert_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_inference");
    group.sample_size(20);
    for dim in [64usize, 256] {
        let (interner, traces, metrics) = synthetic(dim, 96);
        let (model, _) = DeepRest::fit(&traces, &metrics, &interner, quick_config());
        group.bench_with_input(BenchmarkId::new("one_day", dim), &dim, |b, _| {
            b.iter(|| model.estimate_from_traces(&traces, &interner));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(30);
    // The shapes the estimator actually hits: (hidden, dim)·(dim, 1)
    // gate products, square recurrent products, and the transposed-B /
    // transposed-A products the backward pass runs per matmul node.
    for &(m, k, n) in &[
        (32usize, 64usize, 1usize),
        (128, 128, 1),
        (64, 64, 64),
        (128, 128, 128),
    ] {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::rand_uniform(m, k, -1.0, 1.0, &mut rng);
        let b_mat = Tensor::rand_uniform(k, n, -1.0, 1.0, &mut rng);
        let bt = b_mat.transpose();
        let at = a.transpose();
        let id = format!("{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("nn", &id), &id, |bench, _| {
            bench.iter(|| a.matmul(&b_mat));
        });
        group.bench_with_input(BenchmarkId::new("nt", &id), &id, |bench, _| {
            bench.iter(|| a.matmul_nt(&bt));
        });
        group.bench_with_input(BenchmarkId::new("tn", &id), &id, |bench, _| {
            bench.iter(|| at.matmul_tn(&b_mat));
        });
    }
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    group.sample_size(30);
    // The forward pass is GEMV-dominated: W·x gate products and the
    // attention contraction H·α. Sweep square shapes plus the sparse
    // dispatch case (a mostly-zero masked input vector).
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::rand_uniform(n, n, -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&x));
        });
    }
    let mut rng = StdRng::seed_from_u64(12);
    let a = Tensor::rand_uniform(128, 128, -1.0, 1.0, &mut rng);
    let mut xv = vec![0.0f32; 128];
    for (i, v) in xv.iter_mut().enumerate().take(16) {
        // Blocky sparsity, as ablation masks produce: the first two 8-wide
        // chunks live, the remaining 14/16 entirely zero — above the 3/4
        // chunk dispatch threshold.
        *v = 1.0 + i as f32 * 0.1;
    }
    let x = Tensor::vector(xv);
    group.bench_with_input(BenchmarkId::new("sparse", 128), &128, |bench, _| {
        bench.iter(|| a.matmul(&x));
    });
    group.finish();
}

fn bench_matmul_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_into");
    group.sample_size(30);
    // The allocation-free variant the graph runs in steady state: output
    // written into a reused buffer.
    for &(m, k, n) in &[(128usize, 128usize, 1usize), (64, 64, 64)] {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::rand_uniform(m, k, -1.0, 1.0, &mut rng);
        let b_mat = Tensor::rand_uniform(k, n, -1.0, 1.0, &mut rng);
        let id = format!("{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("nn", &id), &id, |bench, _| {
            let mut out = Tensor::zeros(m, n);
            bench.iter(|| {
                a.matmul_into(&b_mat, &mut out);
                out.data()[0]
            });
        });
    }
    group.finish();
}

fn bench_joint_training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_training_epoch");
    group.sample_size(10);
    let (interner, traces, metrics) = synthetic(64, 96);
    for threads in [1usize, 2, 4] {
        let config = quick_config().with_epochs(1).with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| DeepRest::fit(&traces, &metrics, &interner, config.clone()));
        });
    }
    group.finish();
}

fn bench_streaming_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    // Per-window cost of the online path: one StreamPredictor::step per
    // sealed scrape window (feature extraction measured separately above).
    for dim in [64usize, 256] {
        let (interner, traces, metrics) = synthetic(dim, 96);
        let (model, _) = DeepRest::fit(&traces, &metrics, &interner, quick_config());
        let x = model.window_features(traces.window(7), &interner);
        group.bench_with_input(BenchmarkId::new("window_step", dim), &dim, |b, _| {
            let mut predictor = model.stream_predictor();
            b.iter(|| predictor.step(&x));
        });
        // The same step with a fault plan installed, armed on a site the
        // step never probes: every probe on the path takes the slow
        // armed() lookup without firing — the worst case a fault-enabled
        // run pays. With no plan installed (the `window_step` case above)
        // each probe is a single relaxed atomic load.
        group.bench_with_input(BenchmarkId::new("window_step_faulty", dim), &dim, |b, _| {
            let plan = Arc::new(FaultPlan::new(11).once("bench.unreached", 0));
            fault::with_plan(plan, || {
                let mut predictor = model.stream_predictor();
                b.iter(|| predictor.step(&x));
            });
        });
    }
    group.finish();
}

/// Synthetic application with `ceil(experts / 2)` components (CPU + memory
/// series each) — the expert-count axis for the batched serving benches,
/// matching the `deeprest capacity` tool's workload.
fn multi_expert(experts: usize, windows: usize) -> (Interner, WindowedTraces, MetricsRegistry) {
    let components = experts.div_ceil(2);
    let mut interner = Interner::new();
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut metrics = MetricsRegistry::new();
    for comp in 0..components {
        let svc_name = format!("Svc{comp}");
        let svc = interner.intern(&svc_name);
        let op = interner.intern(&format!("op{comp}"));
        let api = interner.intern(&format!("/api{comp}"));
        let mut cpu = TimeSeries::zeros(0);
        let mut mem = TimeSeries::zeros(0);
        for t in 0..windows {
            let count = 2 + (t * (comp + 3)) % 9;
            for _ in 0..count {
                traces.windows[t].push(Trace::new(api, SpanNode::leaf(svc, op)));
            }
            cpu.push(1.5 + 0.8 * count as f64);
            mem.push(48.0 + 0.4 * count as f64);
        }
        metrics.insert(MetricKey::new(&svc_name, ResourceKind::Cpu), cpu);
        metrics.insert(MetricKey::new(&svc_name, ResourceKind::Memory), mem);
    }
    (interner, traces, metrics)
}

fn bench_batched_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    // The batched multi-expert step across the expert-count axis, plus the
    // retained per-expert tape stepper as the speedup baseline at the
    // capacity tool's reference point (64 experts).
    for experts in [16usize, 64, 256] {
        let (interner, traces, metrics) = multi_expert(experts, 48);
        let cfg = DeepRestConfig {
            hidden_dim: 16,
            epochs: 1,
            subseq_len: 12,
            batch_size: 4,
            ..DeepRestConfig::default()
        }
        .with_seed(17);
        let (model, _) = DeepRest::fit(&traces, &metrics, &interner, cfg);
        let x = model.window_features(traces.window(7), &interner);
        let id = format!("{experts}e");
        group.bench_with_input(BenchmarkId::new("batched_step", &id), &id, |b, _| {
            let mut predictor = model.stream_predictor();
            b.iter(|| predictor.step(&x));
        });
        if experts == 64 {
            group.bench_with_input(BenchmarkId::new("per_expert_step", &id), &id, |b, _| {
                let mut predictor = model.per_expert_predictor();
                b.iter(|| predictor.step(&x));
            });
        }
    }
    group.finish();
}

fn bench_gemm_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_batch");
    group.sample_size(30);
    // The batched kernels underneath the fused serving step, at the gate
    // stack's shape (3·hidden rows by input dim, hidden 32): one strided
    // call per expert slab vs `batch` dispatches from packed storage.
    let (rows, cols) = (96usize, 32usize);
    for &batch in &[16usize, 64] {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::rand_uniform(batch * rows, cols, -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform(batch * cols, 1, -1.0, 1.0, &mut rng);
        let id = format!("{batch}x{rows}x{cols}");
        group.bench_with_input(BenchmarkId::new("gemv", &id), &id, |bench, _| {
            let mut out = vec![0.0f32; batch * rows];
            bench.iter(|| {
                kernel::gemv_batch_into(&mut out, a.data(), rows, cols, x.data(), batch);
                out[0]
            });
        });
    }
    // Attention-shaped batch: `batch` independent (32, 64)·(64, 8) GEMMs.
    let (m, k, n, batch) = (32usize, 64usize, 8usize, 4usize);
    let mut rng = StdRng::seed_from_u64(22);
    let a = Tensor::rand_uniform(batch * m, k, -1.0, 1.0, &mut rng);
    let b_mat = Tensor::rand_uniform(batch * k, n, -1.0, 1.0, &mut rng);
    let id = format!("{batch}x{m}x{k}x{n}");
    group.bench_with_input(BenchmarkId::new("gemm", &id), &id, |bench, _| {
        let mut out = vec![0.0f32; batch * m * n];
        bench.iter(|| {
            kernel::gemm_batch_into(&mut out, a.data(), m, k, b_mat.data(), n, batch);
            out[0]
        });
    });
    group.finish();
}

fn bench_gru_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_primitives");
    group.sample_size(30);
    for hidden in [32usize, 128] {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(&mut store, "g", 64, hidden, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("gru_single_step", hidden),
            &hidden,
            |b, &hidden| {
                let mut g = Graph::with_capacity(64);
                let x_val = Tensor::full(64, 1, 0.25);
                b.iter(|| {
                    // Rebind and step on a reset arena: the per-step cost
                    // the truncated-BPTT unroll pays 48 times per graph.
                    g.reset();
                    let bound = cell.bind(&mut g, &store);
                    let h0 = g.constant(Tensor::zeros(hidden, 1));
                    let x = g.constant(x_val.clone());
                    let h1 = bound.step(&mut g, x, h0);
                    g.value(h1).sum()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gru_unroll_48", hidden),
            &hidden,
            |b, &hidden| {
                b.iter(|| {
                    let mut g = Graph::with_capacity(2048);
                    let bound = cell.bind(&mut g, &store);
                    let mut h = g.constant(Tensor::zeros(hidden, 1));
                    for t in 0..48 {
                        let x = g.constant(Tensor::full(64, 1, t as f32 / 48.0));
                        h = bound.step(&mut g, x, h);
                    }
                    g.value(h).sum()
                });
            },
        );
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("autodiff");
    group.sample_size(20);
    // The unit of training work: one 48-step truncated-BPTT subsequence
    // (forward + backward) for a 64-feature, 64-hidden expert. Since the
    // analytic engine replaced the tape on the training hot path, the
    // headline entry measures what training actually runs — the full
    // estimator step (mask → GRU → head → pinball) through
    // `AnalyticTrainer` — while the retained tape oracle keeps its own
    // entry as the speedup baseline.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let mask = store.add("e.mask", Tensor::rand_uniform(64, 1, -1.0, 1.0, &mut rng));
    let cell = GruCell::new(&mut store, "g", 64, 64, &mut rng);
    let alpha = store.add("e.alpha", Tensor::rand_uniform(1, 1, 0.0, 0.02, &mut rng));
    let head = Linear::new(&mut store, "e.head", 128, 3, &mut rng);
    let xs: Vec<Vec<f32>> = (0..48).map(|t| vec![t as f32 / 48.0; 64]).collect();
    let targets = vec![(0..48).map(|t| 0.3 + 0.01 * t as f32).collect::<Vec<f32>>()];
    group.bench_function("gru48_forward_backward", |b| {
        let spec = ExpertSpec {
            mask,
            cell,
            alpha,
            head,
            skip: None,
        };
        let cfg = TrainerConfig {
            input_dim: 64,
            hidden_dim: 64,
            max_steps: 48,
            batch_slots: 1,
            api_mask: true,
            attention: true,
            penalty: None,
            quantiles: quantiles_for(0.90),
            modulation: [1.0; 3],
        };
        let pool = Pool::with_threads(1);
        let mut store = store.clone();
        let mut trainer = AnalyticTrainer::new(&store, vec![spec], cfg, &pool);
        b.iter(|| {
            store.zero_grads();
            let stats = trainer.run_batch(&mut store, &pool, &xs, &targets, &[0]);
            stats[0].loss_sum
        });
    });
    group.bench_function("gru48_tape_oracle", |b| {
        b.iter(|| {
            let mut store = store.clone();
            let mut g = Graph::with_capacity(4096);
            let bound = cell.bind(&mut g, &store);
            let mut h = g.constant(Tensor::zeros(64, 1));
            for t in 0..48 {
                let x = g.constant(Tensor::full(64, 1, t as f32 / 48.0));
                h = bound.step(&mut g, x, h);
            }
            let sq = g.square(h);
            let loss = g.sum_all(sq);
            g.backward(loss, &mut store);
            store.grad_norm()
        });
    });
    group.finish();
}

/// The expert-sharded analytic epoch across the worker pool at paper-ish
/// swarm scale: 64 experts (32 components × CPU+memory), hidden 32 — four
/// threads get eight-expert shards with enough work per dispatch to
/// amortize the pool's scoped-thread spawns. This is the multi-core
/// scaling axis the tape path lacked (`joint_training_epoch`'s flat
/// thread curve), measured on a training-dominated fit.
fn bench_analytic_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    let (interner, traces, metrics) = multi_expert(64, 96);
    for threads in [1usize, 4] {
        let cfg = DeepRestConfig {
            hidden_dim: 32,
            epochs: 1,
            subseq_len: 24,
            batch_size: 4,
            ..DeepRestConfig::default()
        }
        .with_seed(17)
        .with_threads(threads);
        let id = format!("{threads}t");
        group.bench_with_input(BenchmarkId::new("analytic_epoch", &id), &id, |b, _| {
            b.iter(|| DeepRest::fit(&traces, &metrics, &interner, cfg.clone()));
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    group.sample_size(20);
    let samples: Vec<Vec<f32>> = (0..76)
        .map(|i| (0..12_000).map(|j| ((i * j) % 17) as f32 / 17.0).collect())
        .collect();
    group.bench_function("pca_76_experts_12k_params", |b| {
        b.iter(|| linalg::pca(&samples, 2));
    });
    group.finish();
}

/// One full proactive control interval of the closed autoscaling loop:
/// `control_interval` simulated windows, their trace ingests into the
/// serving pipeline, and the control tick's what-if estimate + decision.
/// This is the recurring per-interval cost an operator pays to run the
/// autoscaler.
/// Online-adaptation benches: the warm incremental-update step, plus the
/// frozen adaptive pipeline's steady-state per-window cost next to the
/// plain serving pipeline it wraps. Pinning both window entries in
/// `BENCH_perf.json` makes bench_guard hold the disabled-adaptation
/// overhead inside the serving noise floor on every CI run, instead of
/// trusting a one-off measurement.
fn bench_adapt(c: &mut Criterion) {
    let mut group = c.benchmark_group("adapt");
    group.sample_size(20);

    let (interner, traces, metrics) = synthetic(64, 96);
    let (mut model, _) = DeepRest::fit(&traces, &metrics, &interner, quick_config());

    // One warm `OnlineUpdater::update` over a fresh + replay segment pair —
    // the extra cost an adaptation window pays over a plain serving window.
    // Steady state performs zero kernel allocations (the adapt crate's
    // zero_alloc test), so this measures pure compute.
    let cfg = UpdateConfig::default();
    let mut updater = OnlineUpdater::new(&model, cfg);
    let dim = model.feature_space().dim();
    let experts = model.expert_count();
    let stage = |salt: f32| {
        let xs: Vec<f32> = (0..cfg.segment_len * dim)
            .map(|i| (i as f32 * 0.01 + salt).sin() * 0.5)
            .collect();
        let targets: Vec<f32> = (0..experts * cfg.segment_len)
            .map(|i| (i as f32 * 0.07 + salt).cos() * 0.3 + 0.5)
            .collect();
        (xs, targets)
    };
    let (fresh_xs, fresh_targets) = stage(0.1);
    let (replay_xs, replay_targets) = stage(0.9);
    group.bench_function("update_step", |b| {
        let segments = [
            TrainSegment {
                xs: &fresh_xs,
                targets: &fresh_targets,
            },
            TrainSegment {
                xs: &replay_xs,
                targets: &replay_targets,
            },
        ];
        updater
            .update(&mut model, &segments)
            .expect("warm-up update");
        b.iter(|| updater.update(&mut model, &segments).expect("update step"));
    });

    // Steady-state per-window cost through a long-lived pipeline: each
    // iteration feeds one window's arrivals at ever-advancing timestamps,
    // sealing (roughly) one window per call — assembly, estimation and
    // sanity scoring included, unlike `serving/window_step`, which times
    // the bare predictor step.
    let serve_cfg = ServeConfig::default()
        .with_window_secs(1.0)
        .with_lateness_secs(2.0);
    group.bench_function("window_step_serve", |b| {
        let mut pipeline =
            Pipeline::new(&model, &interner, serve_cfg).with_observations(metrics.clone());
        let mut t = 0usize;
        b.iter(|| {
            let window = &traces.windows[t % traces.windows.len()];
            let n = window.len().max(1) as f64;
            let mut sealed = 0usize;
            for (j, trace) in window.iter().enumerate() {
                let at_secs = t as f64 + (j as f64 + 0.5) / n;
                sealed += pipeline
                    .ingest(TimestampedTrace {
                        at_secs,
                        trace: trace.clone(),
                    })
                    .expect("serve ingest")
                    .len();
            }
            t += 1;
            sealed
        });
    });
    // The same per-window stream through the *frozen* adaptive pipeline:
    // the full continual-learning wrapper with the master switch off. Its
    // delta over `window_step_serve` is the disabled-adaptation overhead.
    group.bench_function("window_step_frozen", |b| {
        let frozen = DeepRest::from_json(&model.to_json().expect("serialize model"))
            .expect("round-trip model");
        let config = AdaptConfig {
            serve: serve_cfg,
            ..AdaptConfig::default()
        }
        .frozen();
        let mut pipeline = AdaptivePipeline::new(frozen, &interner, metrics.clone(), config);
        let mut t = 0usize;
        b.iter(|| {
            let window = &traces.windows[t % traces.windows.len()];
            let n = window.len().max(1) as f64;
            let mut sealed = 0usize;
            for (j, trace) in window.iter().enumerate() {
                let at_secs = t as f64 + (j as f64 + 0.5) / n;
                sealed += pipeline
                    .ingest(TimestampedTrace {
                        at_secs,
                        trace: trace.clone(),
                    })
                    .expect("frozen ingest")
                    .len();
            }
            t += 1;
            sealed
        });
    });
    group.finish();
}

/// Per-round cost of the multi-tenant front end: each iteration submits
/// one window's arrivals to every tenant (admission control: breaker,
/// quotas, bounded queue) and runs one DRR scheduling round that drains
/// them all into the per-tenant pipelines. `1t` next to the committed
/// `adapt/window_step_serve` baseline pins the front-end overhead over a
/// bare pipeline; `4t`/`16t` pin the scaling of co-resident tenants
/// sharing one model's weights.
fn bench_multi_tenant_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    let (interner, traces, metrics) = synthetic(64, 96);
    let (model, _) = DeepRest::fit(&traces, &metrics, &interner, quick_config());
    let serve_cfg = ServeConfig::default()
        .with_window_secs(1.0)
        .with_lateness_secs(2.0);
    for tenants in [1usize, 4, 16] {
        let id = format!("{tenants}t");
        group.bench_with_input(BenchmarkId::new("multi_tenant_step", &id), &id, |b, _| {
            let mut registry =
                TenantRegistry::new(SchedConfig::default(), OverloadConfig::default());
            for i in 0..tenants {
                registry.add_tenant(
                    &model,
                    &interner,
                    serve_cfg,
                    TenantConfig::new(format!("t{i}")).with_queue_capacity(1024),
                );
            }
            let mut t = 0usize;
            b.iter(|| {
                let window = &traces.windows[t % traces.windows.len()];
                let n = window.len().max(1) as f64;
                for (j, trace) in window.iter().enumerate() {
                    let at_secs = t as f64 + (j as f64 + 0.5) / n;
                    let arrival = TimestampedTrace {
                        at_secs,
                        trace: trace.clone(),
                    };
                    // Clone per extra tenant only: the last submit moves
                    // the arrival, so `1t` pays exactly one clone per
                    // trace — the same as `window_step_serve`.
                    for tenant in 1..tenants {
                        registry
                            .submit(tenant, arrival.clone())
                            .expect("unloaded admission");
                    }
                    registry.submit(0, arrival).expect("unloaded admission");
                }
                t += 1;
                registry.run_round().drained
            });
        });
    }
    group.finish();
}

fn bench_scale_control_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(20);
    let scenario = Scenario::new(ScenarioKind::Surge);
    let model = scenario.train();
    let config = ScaleLoopConfig::default();
    let policy = TargetUtilizationPolicy {
        target_utilization: PROACTIVE_TARGET_UTILIZATION,
    };
    group.bench_function("control_interval", |b| {
        let mut lp = ScaleLoop::new(&model, &scenario, policy, config);
        b.iter(|| {
            for _ in 0..config.control_interval {
                if !lp.step().expect("scale step") {
                    // Scenario exhausted: restart the loop and keep going.
                    lp = ScaleLoop::new(&model, &scenario, policy, config);
                    lp.step().expect("scale step after restart");
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_trace_synthesis,
    bench_matmul,
    bench_gemv,
    bench_matmul_into,
    bench_expert_training_epoch,
    bench_joint_training_epoch,
    bench_expert_inference,
    bench_streaming_step,
    bench_batched_serving,
    bench_gemm_batch,
    bench_gru_step,
    bench_backward,
    bench_analytic_training,
    bench_pca,
    bench_adapt,
    bench_multi_tenant_step,
    bench_scale_control_interval
);
criterion_main!(benches);
