//! Deterministic fault injection for DeepRest chaos testing.
//!
//! The serving pipeline claims to survive corrupt traces, stalled sinks,
//! worker panics and poisoned numeric state. This crate is how those claims
//! are *tested*: named injection points ("probes") sit on the ingest,
//! kernel-pool, optimizer, checkpoint and alert-sink paths, and a
//! [`FaultPlan`] arms a subset of them with a seeded, deterministic
//! schedule. The `chaos_replay` integration test drives the golden replay
//! fixture under every fault in the matrix and asserts each run either
//! recovers to bit-identical output once the fault clears or terminates
//! with a typed error — never a panic, never silent divergence.
//!
//! # Overhead budget
//!
//! Probes sit on real hot paths, so the disabled path must be nearly free:
//! every probe starts with [`enabled`], a single relaxed atomic load plus a
//! branch — the exact pattern `deeprest-telemetry` uses. No string is
//! compared, no lock is taken and no hash is computed unless a plan is
//! installed. The `serving/window_step_faulty` Criterion bench pins the
//! armed-but-not-firing overhead; the disabled overhead is held under the
//! 5% regression gate of `serving/window_step`.
//!
//! # Schedules
//!
//! A [`FaultSpec`] arms one probe site for a *hit window*: the probe's
//! `from_hit..until_hit` invocations (per-site hit counters start at 0 when
//! the plan is installed). Within the window an optional probability `p`
//! (seeded, hash-based, deterministic for a given `(seed, site, hit)`)
//! decides each firing. With single-threaded serving the probe sequence is
//! deterministic, so a plan replays identically run after run; concurrent
//! probes still see a deterministic *set* of decisions per hit number, but
//! the assignment of hits to threads follows the scheduler.
//!
//! # Spec strings
//!
//! `DEEPREST_FAULTS` (consulted on the first probe, like
//! `DEEPREST_TELEMETRY`) and [`parse_plan`] accept a `;`-separated list of
//! `site=FROM..UNTIL[~PROB][@PAYLOAD]` clauses:
//!
//! | spec                          | meaning                                      |
//! |-------------------------------|----------------------------------------------|
//! | `stream.hidden=5..6`          | fire on exactly the 6th probe hit            |
//! | `serve.sink.emit=0..`         | fire on every hit                            |
//! | `pool.worker=0..~0.01`        | fire each hit with probability 1%            |
//! | `serve.ckpt.write=0..@40`     | fire on every hit with payload 40            |
//!
//! The payload is site-specific: a truncation byte offset for checkpoint
//! writes, a delay in milliseconds for sink latency, an expert index for
//! output corruption (`u64::MAX`, the default, means "all"). The
//! multi-tenant front end adds two sites: `tenant.flood` amplifies a
//! tenant's submissions 10× (payload selects the tenant index; the
//! default floods all) and `sched.stall` caps one scheduling round's
//! processing budget at the payload (0 items under the default),
//! modeling budget exhaustion — see `deeprest_serve::tenant`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError, RwLock};

use deeprest_telemetry as telemetry;

/// Payload value meaning "applies to every index" (the default).
pub const PAYLOAD_ALL: u64 = u64::MAX;

/// One armed injection point: a probe site, a hit window, an optional
/// firing probability and a site-specific payload.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probe site this spec arms (e.g. `stream.hidden`, `pool.worker`).
    pub site: String,
    /// First probe hit (0-based) the spec fires on.
    pub from_hit: u64,
    /// First probe hit the spec no longer fires on (`u64::MAX` = forever).
    pub until_hit: u64,
    /// Firing probability within the hit window; `>= 1.0` fires always.
    pub prob: f64,
    /// Site-specific payload (truncation offset, delay ms, expert index).
    pub payload: u64,
}

/// A seeded, deterministic set of [`FaultSpec`]s. Build with the
/// fluent methods ([`once`](Self::once), [`always`](Self::always),
/// [`window`](Self::window), [`prob`](Self::prob)), then install globally
/// with [`set_plan`] or scope it over a closure with [`with_plan`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Creates an empty plan with the given probability seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// The plan's probability seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Arms `site` for exactly probe hit `hit`.
    #[must_use]
    pub fn once(self, site: &str, hit: u64) -> Self {
        self.window(site, hit, hit.saturating_add(1))
    }

    /// Arms `site` for every probe hit.
    #[must_use]
    pub fn always(self, site: &str) -> Self {
        self.window(site, 0, u64::MAX)
    }

    /// Arms `site` for probe hits `from..until`.
    #[must_use]
    pub fn window(mut self, site: &str, from: u64, until: u64) -> Self {
        self.specs.push(FaultSpec {
            site: site.to_owned(),
            from_hit: from,
            until_hit: until,
            prob: 1.0,
            payload: PAYLOAD_ALL,
        });
        self
    }

    /// Arms `site` on every hit with probability `p` (seeded, deterministic
    /// per `(seed, site, hit)`).
    #[must_use]
    pub fn prob(mut self, site: &str, p: f64) -> Self {
        self.specs.push(FaultSpec {
            site: site.to_owned(),
            from_hit: 0,
            until_hit: u64::MAX,
            prob: p,
            payload: PAYLOAD_ALL,
        });
        self
    }

    /// Sets the payload of the most recently added spec.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no specs yet (a builder-misuse bug, not a
    /// runtime condition).
    #[must_use]
    pub fn payload(mut self, payload: u64) -> Self {
        let last = self
            .specs
            .last_mut()
            .expect("FaultPlan::payload called before any spec was added");
        last.payload = payload;
        self
    }
}

/// Parses a `DEEPREST_FAULTS`-style spec string (see the [module
/// docs](self)) into a plan seeded with `seed`.
///
/// # Errors
///
/// Returns a description of the first malformed clause.
pub fn parse_plan(spec: &str, seed: u64) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new(seed);
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("fault clause {clause:?} is missing `=`"))?;
        let (rest, payload) = match rest.split_once('@') {
            Some((r, p)) => (
                r,
                p.parse::<u64>()
                    .map_err(|_| format!("bad payload in {clause:?}"))?,
            ),
            None => (rest, PAYLOAD_ALL),
        };
        let (range, prob) = match rest.split_once('~') {
            Some((r, p)) => (
                r,
                p.parse::<f64>()
                    .map_err(|_| format!("bad probability in {clause:?}"))?,
            ),
            None => (rest, 1.0),
        };
        let (from, until) = range
            .split_once("..")
            .ok_or_else(|| format!("fault clause {clause:?} is missing `..` in its hit range"))?;
        let from: u64 = if from.is_empty() {
            0
        } else {
            from.parse()
                .map_err(|_| format!("bad hit range start in {clause:?}"))?
        };
        let until: u64 = if until.is_empty() {
            u64::MAX
        } else {
            until
                .parse()
                .map_err(|_| format!("bad hit range end in {clause:?}"))?
        };
        plan.specs.push(FaultSpec {
            site: site.trim().to_owned(),
            from_hit: from,
            until_hit: until,
            prob,
            payload,
        });
    }
    Ok(plan)
}

/// An installed plan plus its per-spec hit counters.
struct Armed {
    plan: Arc<FaultPlan>,
    hits: Vec<AtomicU64>,
}

/// Global injection state: 0 = uninitialized (env not yet consulted),
/// 1 = disabled, 2 = a plan is installed.
static STATE: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();
static ARMED: RwLock<Option<Armed>> = RwLock::new(None);
/// Serializes [`with_plan`] scopes so concurrently running tests cannot
/// observe each other's faults.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

const UNINIT: u8 = 0;
const DISABLED: u8 = 1;
const ENABLED: u8 = 2;

/// Whether a fault plan is installed. This is the fast path every probe
/// takes: one relaxed atomic load and a branch when injection is off.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        DISABLED => false,
        ENABLED => true,
        _ => init_from_env(),
    }
}

/// Consults `DEEPREST_FAULTS` once and installs the parsed plan. Called
/// lazily by the first probe; calling it eagerly is harmless. Returns the
/// resulting enabled state.
pub fn init_from_env() -> bool {
    ENV_INIT.call_once(|| {
        if STATE.load(Ordering::Relaxed) != UNINIT {
            return;
        }
        let spec = std::env::var("DEEPREST_FAULTS").unwrap_or_default();
        if spec.trim().is_empty() {
            set_plan(None);
            return;
        }
        let seed = std::env::var("DEEPREST_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        match parse_plan(&spec, seed) {
            Ok(plan) => set_plan(Some(Arc::new(plan))),
            Err(err) => {
                eprintln!("[deeprest-fault] ignoring DEEPREST_FAULTS={spec:?}: {err}");
                set_plan(None);
            }
        }
    });
    STATE.load(Ordering::Relaxed) == ENABLED
}

/// Installs `plan` as the process-wide fault plan (`None` disables
/// injection), resetting every hit counter to zero.
pub fn set_plan(plan: Option<Arc<FaultPlan>>) {
    let armed = plan.map(|plan| {
        let hits = plan.specs.iter().map(|_| AtomicU64::new(0)).collect();
        Armed { plan, hits }
    });
    let state = if armed.is_some() { ENABLED } else { DISABLED };
    *ARMED.write().unwrap_or_else(PoisonError::into_inner) = armed;
    STATE.store(state, Ordering::Relaxed);
}

/// Runs `f` with `plan` installed, restoring the previous state afterwards
/// (also on unwind). Scopes are serialized process-wide so concurrently
/// running tests cannot pollute each other's fault schedules.
pub fn with_plan<T>(plan: Arc<FaultPlan>, f: impl FnOnce() -> T) -> T {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = ARMED
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(|a| Arc::clone(&a.plan));
    set_plan(Some(plan));
    struct Restore(Option<Arc<FaultPlan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_plan(self.0.take());
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Runs `f` with injection explicitly disabled (hit counters of any
/// restored plan are reset on exit). Serialized like [`with_plan`].
pub fn without_faults<T>(f: impl FnOnce() -> T) -> T {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = ARMED
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(|a| Arc::clone(&a.plan));
    set_plan(None);
    struct Restore(Option<Arc<FaultPlan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_plan(self.0.take());
        }
    }
    let _restore = Restore(previous);
    f()
}

/// SplitMix64: the deterministic per-hit probability hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a; only has to decorrelate sites under splitmix.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The general probe: when a spec matching `site` is armed for this hit,
/// returns its payload. Each call advances every matching spec's hit
/// counter by one. The slow path only runs when a plan is installed.
pub fn armed(site: &str) -> Option<u64> {
    if !enabled() {
        return None;
    }
    armed_slow(site)
}

#[cold]
fn armed_slow(site: &str) -> Option<u64> {
    let guard = ARMED.read().unwrap_or_else(PoisonError::into_inner);
    let state = guard.as_ref()?;
    let mut fired = None;
    for (i, spec) in state.plan.specs.iter().enumerate() {
        if spec.site != site {
            continue;
        }
        let hit = state.hits[i].fetch_add(1, Ordering::Relaxed);
        if hit < spec.from_hit || hit >= spec.until_hit {
            continue;
        }
        let fires = spec.prob >= 1.0 || {
            let z = splitmix64(state.plan.seed ^ site_hash(site) ^ (i as u64) << 32 ^ hit);
            (z >> 11) as f64 / ((1u64 << 53) as f64) < spec.prob
        };
        if fires && fired.is_none() {
            fired = Some(spec.payload);
        }
    }
    if fired.is_some() {
        telemetry::counter("fault.injected", 1);
        telemetry::counter(format!("fault.injected.{site}"), 1);
    }
    fired
}

/// Boolean probe: should this operation fail now?
#[inline]
pub fn fail_point(site: &str) -> bool {
    armed(site).is_some()
}

/// Panic probe: panics with a recognizable message when armed. Callers
/// that claim panic isolation (the kernel pool, the serving step) must
/// contain this panic.
#[inline]
pub fn maybe_panic(site: &str) {
    if enabled() && armed_slow(site).is_some() {
        panic!("deeprest-fault: injected panic at {site}");
    }
}

/// Latency probe: sleeps for the spec's payload in milliseconds (default
/// 10ms when the payload is [`PAYLOAD_ALL`]) when armed.
#[inline]
pub fn delay_point(site: &str) {
    if !enabled() {
        return;
    }
    if let Some(payload) = armed_slow(site) {
        let ms = if payload == PAYLOAD_ALL { 10 } else { payload };
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Truncation probe: when armed, returns the injected prefix length
/// (`min(payload, len)`); otherwise `len` unchanged.
#[inline]
pub fn truncate_point(site: &str, len: usize) -> usize {
    if !enabled() {
        return len;
    }
    match armed_slow(site) {
        Some(payload) => len.min(usize::try_from(payload).unwrap_or(len)),
        None => len,
    }
}

/// Numeric-poison probe: when armed, overwrites `values[payload]` (or all
/// entries when the payload is [`PAYLOAD_ALL`]) with `NaN`.
#[inline]
pub fn poison_f32s(site: &str, values: &mut [f32]) {
    if !enabled() {
        return;
    }
    if let Some(payload) = armed_slow(site) {
        if payload == PAYLOAD_ALL {
            values.fill(f32::NAN);
        } else if let Some(v) = values.get_mut(payload as usize) {
            *v = f32::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_never_fire() {
        without_faults(|| {
            assert!(!fail_point("x"));
            assert_eq!(armed("x"), None);
            assert_eq!(truncate_point("x", 10), 10);
            let mut v = [1.0f32];
            poison_f32s("x", &mut v);
            assert_eq!(v[0], 1.0);
        });
    }

    #[test]
    fn hit_window_fires_deterministically() {
        let plan = Arc::new(FaultPlan::new(0).window("site", 2, 4));
        with_plan(plan, || {
            let fired: Vec<bool> = (0..6).map(|_| fail_point("site")).collect();
            assert_eq!(fired, [false, false, true, true, false, false]);
        });
    }

    #[test]
    fn payload_reaches_the_probe() {
        let plan = Arc::new(FaultPlan::new(0).always("t").payload(7));
        with_plan(plan, || {
            assert_eq!(armed("t"), Some(7));
            assert_eq!(truncate_point("t", 100), 7);
        });
    }

    #[test]
    fn other_sites_are_untouched() {
        let plan = Arc::new(FaultPlan::new(0).always("a"));
        with_plan(plan, || {
            assert!(fail_point("a"));
            assert!(!fail_point("b"));
        });
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let run = |seed| {
            let plan = Arc::new(FaultPlan::new(seed).prob("p", 0.5));
            with_plan(plan, || {
                (0..64).map(|_| fail_point("p")).collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(1), "same seed, same schedule");
        assert_ne!(run(1), run(2), "different seeds diverge");
        let fires = run(3).iter().filter(|f| **f).count();
        assert!(fires > 10 && fires < 54, "p=0.5 should fire ~half: {fires}");
    }

    #[test]
    fn poison_targets_one_index_or_all() {
        let plan = Arc::new(FaultPlan::new(0).always("n").payload(1));
        with_plan(plan, || {
            let mut v = [1.0f32, 2.0, 3.0];
            poison_f32s("n", &mut v);
            assert!(v[0].is_finite() && v[1].is_nan() && v[2].is_finite());
        });
        let plan = Arc::new(FaultPlan::new(0).always("n"));
        with_plan(plan, || {
            let mut v = [1.0f32, 2.0];
            poison_f32s("n", &mut v);
            assert!(v.iter().all(|x| x.is_nan()));
        });
    }

    #[test]
    fn injected_panic_is_catchable() {
        let plan = Arc::new(FaultPlan::new(0).once("boom", 0));
        with_plan(plan, || {
            let err = std::panic::catch_unwind(|| maybe_panic("boom"))
                .expect_err("armed probe must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("injected panic at boom"), "{msg}");
            // Next hit is past the window: no panic.
            maybe_panic("boom");
        });
    }

    #[test]
    fn spec_string_round_trip() {
        let plan = parse_plan("a=2..4; b=0..~0.25; c=5..6@40; d=..", 9).expect("valid spec");
        assert_eq!(plan.specs().len(), 4);
        assert_eq!(plan.specs()[0].from_hit, 2);
        assert_eq!(plan.specs()[0].until_hit, 4);
        assert_eq!(plan.specs()[1].prob, 0.25);
        assert_eq!(plan.specs()[2].payload, 40);
        assert_eq!(plan.specs()[3].from_hit, 0);
        assert_eq!(plan.specs()[3].until_hit, u64::MAX);

        assert!(parse_plan("nonsense", 0).is_err());
        assert!(parse_plan("a=1..2~zzz", 0).is_err());
        assert!(parse_plan("a=1..2@x", 0).is_err());
    }

    #[test]
    fn set_plan_resets_hit_counters() {
        let plan = Arc::new(FaultPlan::new(0).once("r", 0));
        with_plan(plan.clone(), || {
            assert!(fail_point("r"));
            assert!(!fail_point("r"));
        });
        with_plan(plan, || {
            assert!(fail_point("r"), "fresh install must reset hits");
        });
    }
}
