//! Online serving: live sanity alerts over a streaming trace feed (§9 of
//! DESIGN.md).
//!
//! The batch `sanity_check` example scores a finished day after the fact.
//! Here the same cryptojacking attack is caught *while the day streams*:
//! traces arrive one by one, the watermark seals scrape windows, each
//! window costs one incremental inference step, and alerts fire as soon
//! as the causal anomaly score has been high for a few windows.
//!
//! Run with: `cargo run --release --example streaming_sanity`

use deeprest::core::sanity::SanityConfig;
use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind};
use deeprest::serve::{Pipeline, ServeConfig};
use deeprest::sim::anomaly::CryptojackingAttack;
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, simulate_with, SimConfig};
use deeprest::trace::window::{TimestampedTrace, WindowedTraces};
use deeprest::workload::WorkloadSpec;

/// Flattens a finished simulated day into the arrival stream a collector
/// would have delivered: each window's traces spaced evenly inside it.
fn as_stream(w: &WindowedTraces) -> Vec<TimestampedTrace> {
    let mut out = Vec::new();
    for (t, window) in w.windows.iter().enumerate() {
        let n = window.len().max(1) as f64;
        for (j, trace) in window.iter().enumerate() {
            out.push(TimestampedTrace {
                at_secs: (t as f64 + (j as f64 + 0.5) / n) * w.window_secs,
                trace: trace.clone(),
            });
        }
    }
    out
}

fn main() {
    // Learn one clean day of the social network.
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(2)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    let scope = vec![
        MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu),
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
    ];
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let (model, _) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default().with_epochs(15).with_scope(scope),
    );

    // The day being served: more users than ever (benign) plus a mining
    // process planted on the post store from window 48 onward.
    let check_traffic = WorkloadSpec::new(150.0, app.default_mix())
        .with_days(1)
        .with_windows_per_day(96)
        .with_seed(505)
        .generate();
    let attack = CryptojackingAttack::new("PostStorageMongoDB", 48, 6.0);
    let observed = simulate_with(
        &app,
        &check_traffic,
        &SimConfig::default().with_seed(71),
        &[&attack],
    );

    // The causal scorer's normalization scale converges over the first few
    // windows; a longer minimum run length keeps that warm-up quiet.
    let config = ServeConfig::default()
        .with_window_secs(observed.traces.window_secs)
        .with_sanity(SanityConfig {
            min_event_windows: 5,
            ..SanityConfig::default()
        });
    let mut pipeline = Pipeline::new(&model, &observed.interner, config)
        .with_observations(observed.metrics.clone());

    println!("streaming the attacked day (mining starts at window 48)…\n");
    let mut first_alert = None;
    let mut outputs = Vec::new();
    for arrival in as_stream(&observed.traces) {
        outputs.extend(pipeline.ingest(arrival).expect("serving step failed"));
    }
    outputs.extend(pipeline.flush().expect("serving flush failed"));

    for out in &outputs {
        for alert in &out.alerts {
            if first_alert.is_none() {
                first_alert = Some(alert.window);
            }
            println!("  {alert}");
        }
    }

    println!(
        "\n{} windows served, {} late-dropped, {} alert windows",
        outputs.len(),
        pipeline.late_dropped(),
        outputs.iter().filter(|o| !o.alerts.is_empty()).count()
    );
    match first_alert {
        Some(w) => println!(
            "first alert at window {w} — {} windows after the miner started",
            w.saturating_sub(48)
        ),
        None => println!("no alert fired — unexpected; the miner should be caught"),
    }
}
