//! Online continual learning under concept drift (§15 of DESIGN.md).
//!
//! The traffic stays healthy — the same periodic request load all day —
//! but the resource cost *per request* slowly drifts away from the regime
//! the model was trained on. A frozen model's intervals go stale: its
//! coverage collapses and the sanity check cries wolf on perfectly
//! healthy traffic. The adaptive pipeline instead watches its own
//! interval-coverage misses, widens the intervals conformally, and folds
//! the new regime into the model with replay-buffered incremental
//! updates — coverage stays near the nominal δ with zero false alerts.
//!
//! Run with: `cargo run --release --example continual_drift`

use deeprest::adapt::{AdaptConfig, AdaptivePipeline};
use deeprest::core::sanity::SanityConfig;
use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::eval::interval_calibration;
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind, TimeSeries};
use deeprest::serve::{ServeConfig, WindowOutput};
use deeprest::trace::window::{TimestampedTrace, WindowedTraces};
use deeprest::trace::{Interner, SpanNode, Trace};

/// Periodic request load of window `t` — the traffic never changes.
fn load(t: usize) -> usize {
    (3 + ((t % 16) as i32 - 8).unsigned_abs()) as usize
}

/// One component, one API, CPU + memory. Before `drift_start` the cost
/// per request is the trained one; afterwards it ramps up by `drift`
/// (full strength after `ramp` windows). Concept drift, not an anomaly:
/// the workload is healthy, the trained relationship is stale.
fn dataset(
    windows: usize,
    drift_start: usize,
    ramp: usize,
    drift: f64,
) -> (Interner, WindowedTraces, MetricsRegistry) {
    let mut interner = Interner::new();
    let frontend = interner.intern("Frontend");
    let read = interner.intern("read");
    let api = interner.intern("/read");
    let mut traces = WindowedTraces::with_windows(1.0, windows);
    let mut cpu = TimeSeries::zeros(0);
    let mut mem = TimeSeries::zeros(0);
    for t in 0..windows {
        let count = load(t);
        for _ in 0..count {
            traces.windows[t].push(Trace::new(api, SpanNode::leaf(frontend, read)));
        }
        let factor = if t < drift_start {
            1.0
        } else {
            1.0 + drift * (((t - drift_start) as f64 / ramp as f64).min(1.0))
        };
        cpu.push(2.0 + 1.5 * count as f64 * factor);
        mem.push(64.0 + 0.5 * count as f64 * (1.0 + (factor - 1.0) * 0.5));
    }
    let mut metrics = MetricsRegistry::new();
    metrics.insert(MetricKey::new("Frontend", ResourceKind::Cpu), cpu);
    metrics.insert(MetricKey::new("Frontend", ResourceKind::Memory), mem);
    (interner, traces, metrics)
}

/// Flattens windowed traces into the arrival stream a collector delivers.
fn as_stream(w: &WindowedTraces) -> Vec<TimestampedTrace> {
    let mut out = Vec::new();
    for (t, window) in w.windows.iter().enumerate() {
        let n = window.len().max(1) as f64;
        for (j, trace) in window.iter().enumerate() {
            out.push(TimestampedTrace {
                at_secs: (t as f64 + (j as f64 + 0.5) / n) * w.window_secs,
                trace: trace.clone(),
            });
        }
    }
    out
}

/// Streams every arrival through one pipeline and returns it with its
/// window outputs.
fn run(
    model: DeepRest,
    interner: &Interner,
    metrics: &MetricsRegistry,
    stream: &[TimestampedTrace],
    config: AdaptConfig,
) -> (AdaptivePipeline, Vec<WindowOutput>) {
    let mut pipeline = AdaptivePipeline::new(model, interner, metrics.clone(), config);
    let mut outputs = Vec::new();
    for arrival in stream {
        outputs.extend(pipeline.ingest(arrival.clone()).expect("adaptive ingest"));
    }
    outputs.extend(pipeline.flush().expect("adaptive flush"));
    (pipeline, outputs)
}

/// Pooled empirical interval coverage over both experts, scored from
/// window `from` on. CPU and memory are instantaneous metrics here, so
/// the observed values are already in the experts' output space.
fn coverage(
    outputs: &[WindowOutput],
    pipeline: &AdaptivePipeline,
    metrics: &MetricsRegistry,
    nominal: f64,
    from: usize,
) -> (f64, f64) {
    let (mut actual, mut lower, mut upper) = (
        TimeSeries::zeros(0),
        TimeSeries::zeros(0),
        TimeSeries::zeros(0),
    );
    for out in outputs.iter().filter(|o| o.window >= from) {
        for (e, key) in pipeline.keys().iter().enumerate() {
            let est = &out.estimates[e];
            if est.lower.is_finite() && est.upper.is_finite() {
                actual.push(metrics.get(key).expect("series").get(out.window));
                lower.push(est.lower);
                upper.push(est.upper);
            }
        }
    }
    let report = interval_calibration(&actual, &lower, &upper, nominal);
    (report.coverage, report.mean_width)
}

fn main() {
    // Learn the stable regime only — long enough for the quantile heads
    // to spread into genuinely calibrated intervals.
    let (interner, clean_traces, clean_metrics) = dataset(64, 64, 1, 0.0);
    let train = DeepRestConfig {
        hidden_dim: 12,
        epochs: 30,
        subseq_len: 16,
        batch_size: 4,
        ..DeepRestConfig::default()
    }
    .with_seed(7);
    let (model, _) = DeepRest::fit(&clean_traces, &clean_metrics, &interner, train);
    let nominal = f64::from(model.config().delta);

    // The day being served: identical traffic, but from window 48 the CPU
    // cost per request ramps +50% over 64 windows (+25% for memory).
    let (_, drift_traces, drift_metrics) = dataset(192, 48, 64, 0.5);
    let stream = as_stream(&drift_traces);

    // Isolated load-peak misses keep the smoothed anomaly score elevated
    // for exactly three windows, so a four-window event rule only fires on
    // *sustained* miscalibration — the drift signature.
    let config = AdaptConfig {
        serve: ServeConfig::default()
            .with_window_secs(drift_traces.window_secs)
            .with_sanity(SanityConfig {
                min_event_windows: 4,
                ..SanityConfig::default()
            }),
        ..AdaptConfig::default()
    };

    let clone =
        |m: &DeepRest| DeepRest::from_json(&m.to_json().expect("serialize")).expect("round-trip");
    println!("serving 192 drifting windows (drift ramps from window 48)…\n");
    let (frozen_pipe, frozen_out) = run(
        clone(&model),
        &interner,
        &drift_metrics,
        &stream,
        config.frozen(),
    );
    let (adaptive_pipe, adaptive_out) =
        run(clone(&model), &interner, &drift_metrics, &stream, config);

    // Score calibration after the cold-start windows (identical for both).
    let (frozen_cov, frozen_width) =
        coverage(&frozen_out, &frozen_pipe, &drift_metrics, nominal, 32);
    let (adaptive_cov, adaptive_width) =
        coverage(&adaptive_out, &adaptive_pipe, &drift_metrics, nominal, 32);
    let alerts =
        |outputs: &[WindowOutput]| -> usize { outputs.iter().map(|o| o.alerts.len()).sum() };

    println!("                          frozen     adaptive");
    println!(
        "  interval coverage      {frozen_cov:>7.3}      {adaptive_cov:>7.3}   (nominal {nominal:.2})"
    );
    println!("  mean interval width    {frozen_width:>7.2}      {adaptive_width:>7.2}");
    println!(
        "  false alerts           {:>7}      {:>7}",
        alerts(&frozen_out),
        alerts(&adaptive_out)
    );
    println!(
        "  incremental updates    {:>7}      {:>7}",
        frozen_pipe.updates_run(),
        adaptive_pipe.updates_run()
    );
    println!(
        "  drift watch fired      {:>7}      {:>7}",
        frozen_pipe.drift_watching().iter().any(|&w| w),
        adaptive_pipe.drift_watching().iter().any(|&w| w)
    );

    assert!(
        (adaptive_cov - nominal).abs() < (frozen_cov - nominal).abs(),
        "adaptation must close the calibration gap"
    );
    println!(
        "\nthe frozen model drifted {:.1} coverage points off nominal; \
         adaptation held the gap to {:.1}",
        100.0 * (frozen_cov - nominal).abs(),
        100.0 * (adaptive_cov - nominal).abs()
    );
}
