//! Application sanity check: detecting a cryptojacking attack (§5.4).
//!
//! A mining process is planted on the post store halfway through the check
//! period. Its CPU draw is invisible to pattern-based monitoring when
//! traffic is also growing — but DeepRest knows the observed API traffic
//! cannot justify the consumption and raises an interpretable alert.
//!
//! Run with: `cargo run --release --example sanity_check`

use deeprest::core::sanity::{self, SanityConfig};
use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind};
use deeprest::sim::anomaly::CryptojackingAttack;
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, simulate_with, SimConfig};
use deeprest::workload::WorkloadSpec;

fn main() {
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(4)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    let scope = vec![
        MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
    ];
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let (model, _) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default().with_epochs(25).with_scope(scope),
    );

    // The check period: two days, growing traffic (benign), mining from the
    // second day's first window onward.
    let check_traffic = WorkloadSpec::new(150.0, app.default_mix())
        .with_days(2)
        .with_windows_per_day(96)
        .with_seed(505)
        .generate();
    let attack = CryptojackingAttack::new("PostStorageMongoDB", 96, 6.0);
    let observed = simulate_with(
        &app,
        &check_traffic,
        &SimConfig::default().with_seed(71),
        &[&attack],
    );

    let report = sanity::check(
        &model,
        &observed.traces,
        &observed.interner,
        &observed.metrics,
        &SanityConfig::default(),
    );

    let cpu = MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu);
    println!("PostStorageMongoDB CPU, actual vs expected:");
    println!(
        "  actual   {}",
        observed.metrics.get(&cpu).unwrap().sparkline(96)
    );
    println!(
        "  expected {}",
        report.estimates.get(&cpu).unwrap().expected.sparkline(96)
    );
    println!("  anomaly  {}", report.per_resource[&cpu].sparkline(96));

    println!("\nalerts:");
    if report.events.is_empty() {
        println!("  (none — unexpected; the mining process should be caught)");
    }
    for event in &report.events {
        println!(
            "  Anomalous event: windows {}..{} (mining starts at window 96)",
            event.start_window, event.end_window
        );
        for finding in &event.findings {
            println!("    {finding}");
        }
    }
    println!("\nday 1 (benign, more users than ever) raises no alarm; the miner does.");
}
