//! Capacity planning ahead of a traffic surge (the paper's resource-
//! allocation use case, §5.3).
//!
//! The application owner expects a holiday weekend: three times the usual
//! users, and the mix shifting toward timeline reads. DeepRest answers
//! "how much of each resource will every component need?" *before* the
//! traffic arrives, so slow-to-provision resources can be requested early.
//!
//! Run with: `cargo run --release --example capacity_planning`

use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind};
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, SimConfig};
use deeprest::workload::WorkloadSpec;

fn main() {
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(4)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    // Plan for the six focus components' CPU plus the post store's disk.
    let scope: Vec<MetricKey> = apps::FOCUS_COMPONENTS
        .iter()
        .map(|c| MetricKey::new(*c, ResourceKind::Cpu))
        .chain([MetricKey::new(
            "PostStorageMongoDB",
            ResourceKind::DiskUsage,
        )])
        .collect();
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let (model, _) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default()
            .with_epochs(25)
            .with_scope(scope.clone()),
    );

    // The expected holiday traffic: 3x users, read-heavy mix.
    let mut holiday_mix = app.default_mix();
    for (api, w) in &mut holiday_mix {
        if api == "/readUserTimeline" {
            *w *= 1.8;
        }
    }
    let holiday = WorkloadSpec::new(360.0, holiday_mix)
        .with_days(1)
        .with_windows_per_day(96)
        .with_seed(2026)
        .generate();
    let estimate = model.estimate_traffic(&holiday, 7);

    println!("capacity plan for the holiday weekend (3x users, read-heavy):\n");
    println!(
        "  {:<26} {:>12} {:>12} {:>12}",
        "component", "today peak", "est. peak", "headroom?"
    );
    for key in scope.iter().filter(|k| k.resource == ResourceKind::Cpu) {
        let today_peak = learn.metrics.get(key).unwrap().max();
        let pred = estimate.get(key).expect("in scope");
        // Plan against the upper confidence limit, not the median: the
        // quantile head exists precisely so operators can provision for the
        // 95th percentile.
        let planned_peak = pred.upper.max();
        let verdict = if planned_peak < 70.0 {
            "ok"
        } else {
            "SCALE UP"
        };
        println!(
            "  {:<26} {today_peak:11.1}% {planned_peak:11.1}% {verdict:>12}",
            key.component
        );
    }

    // Disk: how much will the post store grow over the holiday day?
    let disk_key = MetricKey::new("PostStorageMongoDB", ResourceKind::DiskUsage);
    let current = learn
        .metrics
        .get(&disk_key)
        .unwrap()
        .values()
        .last()
        .copied()
        .unwrap();
    let growth = estimate
        .get(&disk_key)
        .expect("in scope")
        .integrated(current);
    println!(
        "\n  PostStorageMongoDB disk: {:.0} MiB today -> {:.0} MiB expected after the holiday (+{:.0} MiB)",
        current,
        growth.expected.values().last().unwrap(),
        growth.expected.values().last().unwrap() - current
    );
    println!("\n(the upper-limit column uses the delta=0.90 confidence interval of Eq. 6)");
}
