//! Interpreting the learned API-aware masks (§6, Fig. 22): which API
//! endpoints drive which resources — recovered from trained parameters,
//! without any access to the application's source code.
//!
//! Run with: `cargo run --release --example interpret_masks`

use deeprest::core::{interpret, DeepRest, DeepRestConfig};
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind};
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, SimConfig};
use deeprest::workload::WorkloadSpec;

fn main() {
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(4)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    let scope = vec![
        MetricKey::new("MediaMongoDB", ResourceKind::Memory),
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
        MetricKey::new("PostStorageMongoDB", ResourceKind::Cpu),
    ];
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let (model, _) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default()
            .with_epochs(30)
            .with_scope(scope.clone()),
    );

    for key in &scope {
        let attribution = interpret::api_attribution(&model, key).expect("in scope");
        println!("\n{key}: which APIs influence this resource?");
        for (api, weight) in attribution.weights.iter().take(5) {
            let bar = "#".repeat((weight * 32.0).round() as usize);
            println!("  {api:<22} {weight:5.2} {bar}");
        }
        println!("  strongest invocation paths:");
        for (path, w) in interpret::top_paths(&model, key, 2).expect("in scope") {
            println!("    ({w:.2}) {path}");
        }
    }
    println!(
        "\n(compare with Fig. 22: MediaMongoDB memory <- /uploadMedia; ComposePostService CPU"
    );
    println!(" and PostStorageMongoDB write IOps <- /composePost; PostStorageMongoDB CPU <- both");
    println!(" /composePost and the timeline reads)");
}
