//! Quickstart: the full DeepRest pipeline in one file.
//!
//! 1. Simulate a microservice social network serving three days of two-peak
//!    API traffic (this stands in for a production deployment with Jaeger +
//!    Prometheus telemetry).
//! 2. Application learning: fit DeepRest on the traces + metrics.
//! 3. Mode 1 query: "what if twice as many users show up tomorrow?"
//! 4. Compare against the actual measurement of that hypothetical day.
//!
//! Run with: `cargo run --release --example quickstart`

use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::{eval, MetricKey, ResourceKind};
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, SimConfig};
use deeprest::workload::WorkloadSpec;

fn main() {
    // -- 1. The "production" application -----------------------------------
    let app = apps::social_network();
    println!(
        "application: {} ({} components, {} APIs, {} tracked resources)",
        app.name,
        app.components.len(),
        app.apis.len(),
        app.resource_count()
    );

    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(3)
        .with_windows_per_day(96)
        .generate();
    let sim_cfg = SimConfig::default();
    let learn = simulate(&app, &learn_traffic, &sim_cfg);
    println!(
        "learning phase: {} windows, {} traces collected",
        learn.traces.len(),
        learn.traces.trace_count()
    );

    // -- 2. Application learning -------------------------------------------
    // A small scope keeps the example fast; drop `.with_scope` to train one
    // expert per resource.
    let scope = vec![
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
    ];
    let config = DeepRestConfig::default()
        .with_epochs(25)
        .with_scope(scope.clone());
    let metrics = {
        // Filter the registry to the scope (the model only needs these).
        let mut filtered = deeprest::metrics::MetricsRegistry::new();
        for key in &scope {
            filtered.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
        }
        filtered
    };
    let (model, report) = DeepRest::fit(&learn.traces, &metrics, &learn.interner, config);
    println!(
        "trained {} experts over {} path features in {:.1}s (loss {:.3} -> {:.3})",
        report.expert_count,
        report.feature_dim,
        report.train_seconds,
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );

    // -- 3. Mode 1: hypothetical traffic ------------------------------------
    let query_traffic = learn_traffic.slice(0..96).scale(2.0);
    let estimate = model.estimate_traffic(&query_traffic, 42);

    // -- 4. Validate against an actual run of that traffic ------------------
    let actual = simulate(&app, &query_traffic, &SimConfig::default().with_seed(99));
    println!("\nestimation quality on the 2x-users day:");
    for key in &scope {
        let pred = estimate.get(key).expect("in scope");
        let truth = actual.metrics.get(key).expect("simulated");
        println!(
            "  {key:<38} MAPE {:5.1}%  (actual mean {:.2} {}, estimated mean {:.2})",
            eval::mape(truth, &pred.expected),
            truth.mean(),
            key.resource.unit(),
            pred.expected.mean()
        );
    }
    println!("\ndone — see examples/capacity_planning.rs and examples/sanity_check.rs for the two query modes in depth");
}
