//! DeepRest on a second application — the hotel reservation system (Fig. 7)
//! — demonstrating application-independence: no DeepRest code changes, just
//! different telemetry in, estimates out.
//!
//! Run with: `cargo run --release --example hotel_reservation`

use deeprest::core::{DeepRest, DeepRestConfig};
use deeprest::metrics::{eval, MetricKey, MetricsRegistry, ResourceKind};
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, SimConfig};
use deeprest::workload::WorkloadSpec;

fn main() {
    let app = apps::hotel_reservation();
    println!(
        "application: {} ({} components, {} APIs, {} tracked resources)",
        app.name,
        app.components.len(),
        app.apis.len(),
        app.resource_count()
    );

    let learn_traffic = WorkloadSpec::new(150.0, app.default_mix())
        .with_days(4)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    let scope = vec![
        MetricKey::new("FrontendService", ResourceKind::Cpu),
        MetricKey::new("SearchService", ResourceKind::Cpu),
        MetricKey::new("ReserveMongoDB", ResourceKind::WriteIops),
    ];
    let mut metrics = MetricsRegistry::new();
    for key in &scope {
        metrics.insert(key.clone(), learn.metrics.get(key).unwrap().clone());
    }
    let (model, report) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default()
            .with_epochs(25)
            .with_scope(scope.clone()),
    );
    println!(
        "trained {} experts over {} invocation-path features",
        report.expert_count, report.feature_dim
    );

    // The Fig. 17 scenario: 3x more users than ever.
    let query = WorkloadSpec::new(450.0, app.default_mix())
        .with_days(1)
        .with_windows_per_day(96)
        .with_seed(33)
        .generate();
    let estimate = model.estimate_traffic(&query, 5);
    let actual = simulate(&app, &query, &SimConfig::default().with_seed(44));

    println!("\nestimating a 3x-users day:");
    for key in &scope {
        let pred = estimate.get(key).expect("in scope");
        let truth = actual.metrics.get(key).expect("simulated");
        println!(
            "  {key:<34} MAPE {:5.1}%  (actual peak {:.1} {}, estimated peak {:.1})",
            eval::mape(truth, &pred.expected),
            truth.max(),
            key.resource.unit(),
            pred.expected.max()
        );
    }
}
