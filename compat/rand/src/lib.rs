//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of the exact `rand`
//! API surface DeepRest uses: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha12, so streams differ from the real
//! crate, but the statistical quality is more than sufficient for the
//! simulator and initializers, and every consumer in this workspace seeds
//! explicitly, so runs stay fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire's nearly-divisionless bounded sampling.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                lo.wrapping_add((m >> 64) as u64 as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 24 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, `lo..hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators from explicit seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpointing a stream mid-flight.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact [`state`](Self::state), resuming
        /// the stream bit-identically.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random rearrangement of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
