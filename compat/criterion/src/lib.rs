//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmark harness with criterion's
//! spelling: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Every measurement is printed to stdout and appended to a summary
//! written as `BENCH_perf.json` (override the path with the
//! `BENCH_PERF_OUT` environment variable) when `criterion_main!` exits,
//! so the perf trajectory is machine-trackable across PRs.
//!
//! Setting `BENCH_FILTER` to a comma-separated list of substrings runs
//! only the benchmarks whose id contains one of them (e.g.
//! `BENCH_FILTER=matmul,gemv` for a CI kernel smoke run).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity; prevents dead-code elimination of
/// benchmark results.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Debug)]
struct Measurement {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream emits summary statistics here; the
    /// stand-in reports per-benchmark as it goes).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    sample_ns: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so one sample
        // costs at least ~2ms (or a single call if the routine is slow).
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed();
        let iters = if once >= Duration::from_millis(2) {
            1
        } else {
            let per_iter_ns = once.as_nanos().max(1) as u64;
            (2_000_000 / per_iter_ns).clamp(1, 1 << 20)
        };
        self.iters_per_sample = iters;

        let budget = Duration::from_secs(3);
        let started = Instant::now();
        for sample in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.sample_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
            // Keep slow benchmarks bounded: stop after the time budget
            // once a minimum number of samples is in.
            if started.elapsed() > budget && sample >= 2 {
                break;
            }
        }
    }
}

/// Returns `true` when `id` passes the `BENCH_FILTER` environment variable:
/// unset runs everything; otherwise the id must contain one of the
/// comma-separated substrings. Lets CI smoke runs restrict a bench binary
/// to its fast kernel groups without a recompile.
fn passes_filter(id: &str) -> bool {
    match std::env::var("BENCH_FILTER") {
        Ok(filter) if !filter.trim().is_empty() => filter
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .any(|p| id.contains(p)),
        _ => true,
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) {
    if !passes_filter(&id) {
        return;
    }
    let mut bencher = Bencher {
        iters_per_sample: 1,
        sample_ns: Vec::new(),
        target_samples: sample_size.max(3),
    };
    f(&mut bencher);
    if bencher.sample_ns.is_empty() {
        return;
    }
    let samples = bencher.sample_ns.len();
    let mean_ns = bencher.sample_ns.iter().sum::<f64>() / samples as f64;
    let min_ns = bencher
        .sample_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!(
        "bench {id:<56} mean {:>12}  min {:>12}  ({samples} samples x {} iters)",
        format_ns(mean_ns),
        format_ns(min_ns),
        bencher.iters_per_sample,
    );
    RESULTS.lock().unwrap().push(Measurement {
        id,
        mean_ns,
        min_ns,
        samples,
        iters_per_sample: bencher.iters_per_sample,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Writes the collected measurements as JSON. Called by
/// [`criterion_main!`] after all groups run.
#[doc(hidden)]
pub fn __write_summary() {
    let results = RESULTS.lock().unwrap();
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            m.id.replace('"', "\\\""),
            m.mean_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("BENCH_PERF_OUT").unwrap_or_else(|_| "BENCH_perf.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path} ({} benchmarks)", results.len()),
        Err(e) => eprintln!("criterion compat: failed to write {path}: {e}"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group and then
/// writing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags (e.g. `--bench`); the stand-in
            // runs everything unconditionally.
            $($group();)+
            $crate::__write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|m| m.id == "smoke/sum"));
        assert!(results.iter().any(|m| m.id == "smoke/param/4"));
    }
}
