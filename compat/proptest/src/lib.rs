//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing harness with proptest's spelling:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`BoxedStrategy`], [`Just`],
//! [`prop_oneof!`], [`any`], `proptest::collection::vec` and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test name (fully deterministic, no persistence
//! files), and failing cases are not shrunk — the assertion failure
//! reports the generated values via the standard panic message instead.

#![forbid(unsafe_code)]

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration; `cases` is the number of generated inputs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Seeds the per-test generator from the test's name (FNV-1a).
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous level and returns the next one, applied `depth`
    /// times on top of `self` as the leaf.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for
    /// upstream compatibility and unused: recursion depth alone bounds
    /// the generated trees.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.0.len());
        self.0[pick].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T`; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { min: len, max: len }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property-test condition (panics with the failing inputs'
/// panic message; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(
            fixed in crate::collection::vec(0u32..5, 4),
            ranged in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..6),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..6).contains(&ranged.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn count(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        let strat = (0u32..4)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::__seed_rng("recursive");
        for _ in 0..200 {
            let tree = strat.generate(&mut rng);
            assert!(count(&tree) >= 1);
        }
    }
}
