//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the mini-serde [`Value`] tree (see the vendored `serde` crate)
//! to JSON text and parses JSON text back, with the API spelling this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`json!`], [`Map`] and [`Error`].

#![forbid(unsafe_code)]

pub use serde::{Map, Number, Value};

/// JSON serialization/deserialization error (shared with `serde`).
pub type Error = serde::Error;

/// Converts any serializable value into a [`Value`] tree.
///
/// (Upstream returns `Result`; conversion is infallible here, and the
/// only caller is the [`json!`] macro.)
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails in this implementation; the `Result` keeps upstream's
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this implementation; the `Result` keeps upstream's
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(object) => {
            if object.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in object.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            let start = out.len();
            let _ = write!(out, "{v}");
            // Keep floats recognizably floats (upstream prints `1.0`).
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut object = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(object));
        }
        loop {
            let key = match self.peek()? {
                b'"' => self.string()?,
                other => {
                    return Err(Error::custom(format!(
                        "expected object key, got `{}`",
                        other as char
                    )))
                }
            };
            self.expect(b':')?;
            let value = self.value()?;
            object.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(object));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_keyword("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // byte-walk always lands on boundaries).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::custom("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if let Some(digits) = text.strip_prefix('-') {
            let _ = digits;
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-shaped syntax, interpolating Rust
/// expressions through `serde::Serialize`. Same muncher technique as
/// upstream serde_json, reduced to the forms this workspace uses
/// (string-literal keys, expression/array/object/keyword values).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //
    // Array element munching: builds up `[$($elems,)*]`.
    //
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    //
    // Object munching: `@object $map (current key) (remaining tokens)`.
    //
    (@object $object:ident () ()) => {};
    // Insert a fully-munched `key => value` and continue.
    (@object $object:ident [$key:tt] ($value:expr) , $($rest:tt)*) => {
        $object.insert($key, $value);
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident [$key:tt] ($value:expr)) => {
        $object.insert($key, $value);
    };
    // Munch the value for the current key.
    (@object $object:ident ($key:tt) (: null $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::Value::Null) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: true $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::Value::Bool(true)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: false $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::Value::Bool(false)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: [$($arr:tt)*] $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: {$($obj:tt)*} $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: $value:expr , $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$key] ($crate::to_value(&$value)) , $($rest)*);
    };
    (@object $object:ident ($key:tt) (: $value:expr)) => {
        $crate::json_internal!(@object $object [$key] ($crate::to_value(&$value)));
    };
    // Take the next key (a string literal).
    (@object $object:ident () ($key:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($key) ($($rest)*));
    };
    //
    // Entry points.
    //
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({
            "name": "deeprest",
            "count": 3u32,
            "nested": { "pi": 3.5f64, "flags": [true, false, null] },
            "empty": {},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_spaces_keys() {
        let v = json!({"serviceName": "FrontendNGINX"});
        let text = to_string_pretty(&v).unwrap();
        assert!(
            text.contains("\"serviceName\": \"FrontendNGINX\""),
            "{text}"
        );
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nA😀", "n": -4, "f": 2.5e2}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").unwrap().as_str().unwrap(), "a\nA😀");
        assert_eq!(obj.get("n").unwrap().as_i64().unwrap(), -4);
        assert_eq!(obj.get("f").unwrap().as_f64().unwrap(), 250.0);
    }

    #[test]
    fn floats_stay_floats_in_text() {
        let text = to_string(&vec![1.0f64, 0.5]).unwrap();
        assert_eq!(text, "[1.0,0.5]");
    }

    #[test]
    fn expression_values_serialize() {
        let rows: Vec<(String, f64)> = vec![("a".into(), 1.5)];
        let v = json!({ "rows": rows, "len": rows.len() });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"rows":[["a",1.5]],"len":1}"#);
    }
}
