//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework with the same spelling as
//! serde: `#[derive(Serialize, Deserialize)]`, `serde::Serialize`,
//! `serde::Deserialize`, plus the field attributes `rename`, `default`
//! and `skip`. Instead of serde's visitor architecture, the model is a
//! concrete value tree ([`Value`]): serialization converts to a `Value`,
//! deserialization reads from one. `serde_json` (also vendored) renders
//! that tree to/from JSON text.
//!
//! Maps serialize to JSON objects when their keys serialize to strings,
//! and to arrays of `[key, value]` pairs otherwise (upstream serde_json
//! would reject non-string keys; the pair encoding keeps round-trips
//! lossless for the composite keys this workspace uses).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// A JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Map),
}

/// A JSON number: non-negative integer, negative integer, or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integers.
    PosInt(u64),
    /// Strictly negative integers.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact view as `u64`, when representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&v) => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact view as `i64`, when representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map, the payload of [`Value::Object`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any previous entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Value {
    /// Borrows the object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape doesn't match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // JSON has no NaN/inf; mirror serde_json's `null`.
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => Ok(map.clone()),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Shared map encoding: object when every key serializes to a string,
/// `[key, value]` pairs otherwise.
fn serialize_pairs<'a>(pairs: impl Iterator<Item = (Value, &'a dyn ErasedSerialize)>) -> Value {
    let rendered: Vec<(Value, Value)> = pairs.map(|(k, v)| (k, v.erased_to_value())).collect();
    if rendered.iter().all(|(k, _)| matches!(k, Value::String(_))) {
        let mut object = Map::new();
        for (k, v) in rendered {
            let Value::String(key) = k else {
                unreachable!()
            };
            object.insert(key, v);
        }
        Value::Object(object)
    } else {
        Value::Array(
            rendered
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

/// Object-safe serialization shim used by the map encoders.
trait ErasedSerialize {
    fn erased_to_value(&self) -> Value;
}

impl<T: Serialize> ErasedSerialize for T {
    fn erased_to_value(&self) -> Value {
        self.to_value()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        serialize_pairs(
            self.iter()
                .map(|(k, v)| (k.to_value(), v as &dyn ErasedSerialize)),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash iteration order is nondeterministic; sort by serialized key
        // so output is stable across runs.
        let mut rendered: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        rendered.sort_by(|(a, _), (b, _)| value_order(a, b));
        serialize_pairs(
            rendered
                .iter()
                .map(|(k, v)| (k.clone(), v as &dyn ErasedSerialize)),
        )
    }
}

/// A deterministic total order over values, used only to stabilize
/// `HashMap` serialization.
fn value_order(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => x.as_f64().total_cmp(&y.as_f64()),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let ord = value_order(xi, yi);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let ord = xk.cmp(yk).then_with(|| value_order(xv, yv));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize to null.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let vec = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(vec).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

/// Decodes either map encoding back into key/value pairs.
fn deserialize_pairs<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Object(object) => object
            .iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::String(k.clone()))?;
                Ok((key, V::from_value(v)?))
            })
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        _ => Err(Error::custom("expected map")),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_keyed_maps_become_objects() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        let obj = v.as_object().expect("object encoding");
        assert_eq!(obj.len(), 2);
        assert_eq!(obj.get("a").and_then(Value::as_u64), Some(1));
        let back: BTreeMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn composite_keyed_maps_become_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), "x".to_string());
        let v = m.to_value();
        assert!(v.as_array().is_some(), "non-string keys use pair arrays");
        let back: BTreeMap<(u32, u32), String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_float_round_trip() {
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        let v = 1.5f32.to_value();
        assert_eq!(f32::from_value(&v).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }
}
