//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! carries a dependency-free derive implementation built directly on
//! `proc_macro` token streams (no `syn`/`quote`). It supports the subset
//! of serde this codebase uses:
//!
//! * named structs, tuple/newtype structs
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, matching serde's default representation)
//! * generic parameters copied verbatim (bounds must already include
//!   `serde::Serialize` / `serde::Deserialize` where required)
//! * field attributes `#[serde(rename = "...")]`, `#[serde(default)]`,
//!   `#[serde(skip)]`, `#[serde(skip_serializing_if = "...")]`
//!
//! The generated code targets the mini-serde data model: `Serialize` is
//! `fn to_value(&self) -> serde::Value` and `Deserialize` is
//! `fn from_value(&serde::Value) -> Result<Self, serde::Error>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip: bool,
    /// Path of a `fn(&T) -> bool` predicate; when it returns `true` the
    /// field is omitted from the serialized object
    /// (`#[serde(skip_serializing_if = "Option::is_none")]`).
    skip_serializing_if: Option<String>,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

enum Body {
    Named(Vec<NamedField>),
    /// Tuple struct: per-field attrs in declaration order.
    Tuple(Vec<FieldAttrs>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

struct Item {
    name: String,
    /// Verbatim generic parameter list (without the angle brackets), e.g.
    /// `'a, T: serde::Serialize`. Empty when the item is not generic.
    generics: String,
    /// The generic arguments for the self type, bounds stripped: `'a, T`.
    generic_args: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, name: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == name)
}

/// Consumes leading attributes, returning the merged serde field attrs.
fn take_attrs(tokens: &[TokenTree], mut pos: usize) -> (FieldAttrs, usize) {
    let mut attrs = FieldAttrs::default();
    while pos + 1 < tokens.len() && is_punct(&tokens[pos], '#') {
        if let TokenTree::Group(g) = &tokens[pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                parse_attr_group(&g.stream(), &mut attrs);
                pos += 2;
                continue;
            }
        }
        break;
    }
    (attrs, pos)
}

/// Parses the inside of one `#[...]`; only `serde(...)` is interpreted.
fn parse_attr_group(stream: &TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.len() != 2 || !is_ident(&tokens[0], "serde") {
        return;
    }
    let TokenTree::Group(inner) = &tokens[1] else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => {
                    attrs.skip = true;
                    i += 1;
                }
                "default" => {
                    attrs.default = true;
                    i += 1;
                }
                "rename" => {
                    // rename = "literal"
                    if i + 2 < inner.len() && is_punct(&inner[i + 1], '=') {
                        if let TokenTree::Literal(lit) = &inner[i + 2] {
                            let text = lit.to_string();
                            attrs.rename = Some(text.trim_matches('"').to_string());
                        }
                    }
                    i += 3;
                }
                "skip_serializing_if" => {
                    // skip_serializing_if = "path::to::predicate"
                    if i + 2 < inner.len() && is_punct(&inner[i + 1], '=') {
                        if let TokenTree::Literal(lit) = &inner[i + 2] {
                            let text = lit.to_string();
                            attrs.skip_serializing_if = Some(text.trim_matches('"').to_string());
                        }
                    }
                    i += 3;
                }
                other => panic!("serde_derive compat: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive compat: unexpected token in serde attribute: {other}"),
        }
    }
}

/// Skips an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if pos < tokens.len() && is_ident(&tokens[pos], "pub") {
        pos += 1;
        if pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Skips a type (or bound) until a top-level `,`, tracking `<...>` depth.
/// Returns the position of the `,` (or `tokens.len()`).
fn skip_to_top_level_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut depth = 0i32;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return pos,
            _ => {}
        }
        pos += 1;
    }
    pos
}

fn render(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Drops bounds from a generic parameter list: `'a, T: X<Y>` -> `'a, T`.
fn strip_bounds(tokens: &[TokenTree]) -> String {
    let mut kept: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    let mut skipping = false;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                skipping = false;
                kept.push(tt.clone());
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 0 => {
                skipping = true;
                continue;
            }
            _ => {}
        }
        if !skipping {
            kept.push(tt.clone());
        }
    }
    render(&kept)
}

fn parse_named_fields(group: &TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (attrs, next) = take_attrs(&tokens, pos);
        pos = skip_vis(&tokens, next);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!(
                "serde_derive compat: expected field name, got {:?}",
                tokens[pos].to_string()
            );
        };
        pos += 1; // name
        assert!(
            is_punct(&tokens[pos], ':'),
            "serde_derive compat: expected `:`"
        );
        pos = skip_to_top_level_comma(&tokens, pos + 1);
        pos += 1; // consume the comma (or run off the end)
        fields.push(NamedField {
            name: name.to_string(),
            attrs,
        });
    }
    fields
}

fn parse_tuple_fields(group: &TokenStream) -> Vec<FieldAttrs> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (attrs, next) = take_attrs(&tokens, pos);
        pos = skip_vis(&tokens, next);
        if pos >= tokens.len() {
            break; // trailing comma
        }
        pos = skip_to_top_level_comma(&tokens, pos);
        pos += 1;
        fields.push(attrs);
    }
    fields
}

fn parse_variants(group: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (_attrs, next) = take_attrs(&tokens, pos);
        pos = next;
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive compat: expected variant name");
        };
        pos += 1;
        let mut kind = VariantKind::Unit;
        if pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[pos] {
                kind = match g.delimiter() {
                    Delimiter::Parenthesis => {
                        VariantKind::Tuple(parse_tuple_fields(&g.stream()).len())
                    }
                    Delimiter::Brace => VariantKind::Named(parse_named_fields(&g.stream())),
                    _ => panic!("serde_derive compat: unexpected variant delimiter"),
                };
                pos += 1;
            }
        }
        // Consume a trailing `,` if present.
        if pos < tokens.len() && is_punct(&tokens[pos], ',') {
            pos += 1;
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Outer attributes (doc comments, other derives' helpers).
    while pos + 1 < tokens.len() && is_punct(&tokens[pos], '#') {
        pos += 2;
    }
    pos = skip_vis(&tokens, pos);
    let is_enum = if is_ident(&tokens[pos], "struct") {
        false
    } else if is_ident(&tokens[pos], "enum") {
        true
    } else {
        panic!("serde_derive compat: only structs and enums are supported");
    };
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("serde_derive compat: expected item name");
    };
    let name = name.to_string();
    pos += 1;

    // Generics.
    let mut generic_tokens: Vec<TokenTree> = Vec::new();
    if pos < tokens.len() && is_punct(&tokens[pos], '<') {
        pos += 1;
        let mut depth = 1i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            generic_tokens.push(tokens[pos].clone());
            pos += 1;
        }
    }
    if pos < tokens.len() && is_ident(&tokens[pos], "where") {
        panic!("serde_derive compat: `where` clauses are not supported");
    }

    let body = if is_enum {
        let TokenTree::Group(g) = &tokens[pos] else {
            panic!("serde_derive compat: expected enum body");
        };
        Body::Enum(parse_variants(&g.stream()))
    } else {
        match &tokens[pos] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(&g.stream()))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(parse_tuple_fields(&g.stream()))
            }
            other => panic!("serde_derive compat: unsupported struct body: {other}"),
        }
    };

    Item {
        name,
        generics: render(&generic_tokens),
        generic_args: strip_bounds(&generic_tokens),
        body,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

impl Item {
    fn impl_header(&self, trait_name: &str) -> String {
        let (lt, args) = if self.generics.is_empty() {
            (String::new(), String::new())
        } else {
            (
                format!("<{}>", self.generics),
                format!("<{}>", self.generic_args),
            )
        };
        format!("impl{lt} ::serde::{trait_name} for {}{args}", self.name)
    }
}

fn json_key(field: &NamedField) -> &str {
    field.attrs.rename.as_deref().unwrap_or(&field.name)
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Named(fields) => {
            let mut s = String::from("let mut object = ::serde::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let insert = format!(
                    "object.insert(\"{}\", ::serde::Serialize::to_value(&self.{}));\n",
                    json_key(f),
                    f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s.push_str(&format!("if !{pred}(&self.{}) {{\n{insert}}}\n", f.name));
                } else {
                    s.push_str(&insert);
                }
            }
            s.push_str("::serde::Value::Object(object)");
            s
        }
        Body::Tuple(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Body::Tuple(fields) => {
            let elems: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &item.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{ty}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{ty}::{vn}(f0) => {{\n\
                             let mut object = ::serde::Map::new();\n\
                             object.insert(\"{vn}\", ::serde::Serialize::to_value(f0));\n\
                             ::serde::Value::Object(object)\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({}) => {{\n\
                             let mut object = ::serde::Map::new();\n\
                             object.insert(\"{vn}\", ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(object)\n}}\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            let insert = format!(
                                "inner.insert(\"{}\", ::serde::Serialize::to_value({}));\n",
                                json_key(f),
                                f.name
                            );
                            if let Some(pred) = &f.attrs.skip_serializing_if {
                                inner.push_str(&format!("if !{pred}({}) {{\n{insert}}}\n", f.name));
                            } else {
                                inner.push_str(&insert);
                            }
                        }
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {} }} => {{\n{inner}\
                             let mut object = ::serde::Map::new();\n\
                             object.insert(\"{vn}\", ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(object)\n}}\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        item.impl_header("Serialize")
    )
}

/// Generates the expression deserializing one named field from `object`.
fn named_field_expr(item_name: &str, f: &NamedField) -> String {
    if f.attrs.skip {
        return format!("{}: Default::default(),\n", f.name);
    }
    let key = json_key(f);
    let missing = if f.attrs.default {
        "Default::default()".to_string()
    } else {
        format!("return Err(::serde::Error::custom(\"{item_name}: missing field `{key}`\"))")
    };
    format!(
        "{}: match object.get(\"{key}\") {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
         None => {missing},\n}},\n",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let mut s = format!(
                "let object = value.as_object().ok_or_else(|| ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&named_field_expr(name, f));
            }
            s.push_str("})");
            s
        }
        Body::Tuple(fields) if fields.len() == 1 => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Body::Tuple(fields) => {
            let n = fields.len();
            let elems: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\"{name}: expected {n} elements\"));\n}}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"{name}::{vn}: expected array\"))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"{name}::{vn}: expected {n} elements\"));\n}}\n\
                             Ok({name}::{vn}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut s = format!(
                            "\"{vn}\" => {{\n\
                             let object = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"{name}::{vn}: expected object\"))?;\n\
                             Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            s.push_str(&named_field_expr(name, f));
                        }
                        s.push_str("})\n}\n");
                        data_arms.push_str(&s);
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(object) => {{\n\
                 let (tag, inner) = object.iter().next().ok_or_else(|| ::serde::Error::custom(\"{name}: empty variant object\"))?;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}}\n\
                 _ => Err(::serde::Error::custom(\"{name}: expected string or object\")),\n}}"
            )
        }
    };
    format!(
        "{} {{\nfn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        item.impl_header("Deserialize")
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` (mini-serde `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive compat: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (mini-serde `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive compat: generated invalid Deserialize impl")
}
