//! DeepRest — deep resource estimation for interactive microservices.
//!
//! This is the facade crate of the DeepRest reproduction (EuroSys '22,
//! Chow et al.). It re-exports every workspace crate under one namespace so
//! examples and downstream users need a single dependency:
//!
//! * [`tensor`] — dense tensors + reverse-mode autodiff.
//! * [`nn`] — layers (Linear, GRU), optimizers, losses.
//! * [`trace`] — distributed-tracing data model (spans, topologies, paths).
//! * [`metrics`] — resource telemetry time-series and evaluation metrics.
//! * [`workload`] — API traffic generation (scales, mixes, shapes).
//! * [`sim`] — the microservice application simulator (DeathStarBench
//!   substitute) with the Social Network and Hotel Reservation apps.
//! * [`core`] — DeepRest itself: feature extraction, trace synthesis, the
//!   API-aware deep resource estimator, sanity checks, interpretation.
//! * [`serve`] — online serving: streaming window assembly, incremental
//!   inference, live sanity alerts, checkpoint/restore.
//! * [`baselines`] — resource-aware DL, simple scaling, component-aware
//!   scaling comparison estimators.
//! * [`scale`] — closed-loop proactive autoscaling: what-if-driven replica
//!   planning against a reactive threshold baseline, with deterministic
//!   scenario replay.
//! * [`adapt`] — online continual learning: replay-buffered incremental
//!   updates, coverage-drift detection, conformal interval calibration,
//!   bit-exact mid-adaptation checkpoint/resume.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

#![forbid(unsafe_code)]

pub use deeprest_adapt as adapt;
pub use deeprest_baselines as baselines;
pub use deeprest_core as core;
pub use deeprest_metrics as metrics;
pub use deeprest_nn as nn;
pub use deeprest_scale as scale;
pub use deeprest_serve as serve;
pub use deeprest_sim as sim;
pub use deeprest_tensor as tensor;
pub use deeprest_trace as trace;
pub use deeprest_workload as workload;
