//! Cross-crate integration tests: the full learn → query → check pipeline
//! through the facade crate, plus the paper's headline comparative claims
//! on a small-but-real configuration.

use deeprest::baselines::{
    BaselineEstimator, ComponentAwareScaling, LearnData, QueryData, SimpleScaling,
};
use deeprest::core::sanity::{self, SanityConfig};
use deeprest::core::{interpret, DeepRest, DeepRestConfig};
use deeprest::metrics::eval::mape;
use deeprest::metrics::{MetricKey, MetricsRegistry, ResourceKind};
use deeprest::sim::anomaly::RansomwareAttack;
use deeprest::sim::apps;
use deeprest::sim::engine::{simulate, simulate_with, SimConfig};
use deeprest::workload::WorkloadSpec;

fn scope() -> Vec<MetricKey> {
    vec![
        MetricKey::new("FrontendNGINX", ResourceKind::Cpu),
        MetricKey::new("ComposePostService", ResourceKind::Cpu),
        MetricKey::new("UserTimelineService", ResourceKind::Cpu),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops),
        MetricKey::new("PostStorageMongoDB", ResourceKind::WriteThroughput),
    ]
}

struct Fixture {
    app: deeprest::sim::AppSpec,
    learn: deeprest::sim::SimOutput,
    learn_traffic: deeprest::workload::ApiTraffic,
    metrics: MetricsRegistry,
    model: DeepRest,
}

fn fixture() -> Fixture {
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(5)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());
    let mut metrics = MetricsRegistry::new();
    for key in scope() {
        metrics.insert(key.clone(), learn.metrics.get(&key).unwrap().clone());
    }
    let (model, report) = DeepRest::fit(
        &learn.traces,
        &metrics,
        &learn.interner,
        DeepRestConfig::default()
            .with_epochs(25)
            .with_scope(scope()),
    );
    assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    Fixture {
        app,
        learn,
        learn_traffic,
        metrics,
        model,
    }
}

#[test]
fn deeprest_beats_flow_blind_baselines_on_composition_shift() {
    let f = fixture();

    // Unseen composition: read-dominated traffic at 1.5x volume.
    let mut mix: Vec<(String, f64)> = f
        .app
        .default_mix()
        .into_iter()
        .map(|(api, w)| {
            let w = match api.as_str() {
                "/readUserTimeline" => 0.70,
                "/composePost" => 0.05,
                _ => w * 0.25,
            };
            (api, w)
        })
        .collect();
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    for (_, w) in &mut mix {
        *w /= total;
    }
    let query = WorkloadSpec::new(180.0, mix)
        .with_days(1)
        .with_windows_per_day(96)
        .with_seed(404)
        .generate();
    let truth = simulate(&f.app, &query, &SimConfig::default().with_seed(405));

    // DeepRest, mode 1.
    let deeprest_est = f.model.estimate_traffic(&query, 7);

    // The scaling baselines.
    let learn_data = LearnData {
        traffic: &f.learn_traffic,
        traces: &f.learn.traces,
        metrics: &f.metrics,
        interner: &f.learn.interner,
    };
    let mut simple = SimpleScaling::new();
    simple.fit(&learn_data);
    let mut comp_aware = ComponentAwareScaling::new();
    comp_aware.fit(&learn_data);
    let q = QueryData {
        traffic: &query,
        traces: None,
        interner: None,
    };
    let simple_est = simple.estimate(&q);
    let comp_est = comp_aware.estimate(&q);

    // The paper's Fig. 11 story on the write path: reads must not inflate
    // write IOps. Simple scaling is flow-blind and overestimates; DeepRest
    // is close to truth.
    let iops = MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops);
    let actual = truth.metrics.get(&iops).unwrap();
    let m_deeprest = mape(actual, &deeprest_est.get(&iops).unwrap().expected);
    let m_simple = mape(actual, &simple_est[&iops]);
    assert!(
        m_deeprest < m_simple,
        "DeepRest {m_deeprest:.1}% must beat simple scaling {m_simple:.1}% on write IOps"
    );

    // Component-aware gets the ComposePostService CPU roughly right (the
    // flow part) but still overestimates the store's write IOps more than
    // DeepRest (the resource part).
    let m_comp = mape(actual, &comp_est[&iops]);
    assert!(
        m_deeprest < m_comp,
        "DeepRest {m_deeprest:.1}% must beat component-aware {m_comp:.1}% on write IOps"
    );
}

#[test]
fn sanity_check_pinpoints_ransomware_window() {
    let f = fixture();
    let check = WorkloadSpec::new(120.0, f.app.default_mix())
        .with_days(2)
        .with_windows_per_day(96)
        .with_seed(606)
        .generate();
    let attack = RansomwareAttack::new("PostStorageMongoDB", 120, 132);
    let observed = simulate_with(
        &f.app,
        &check,
        &SimConfig::default().with_seed(607),
        &[&attack],
    );
    let report = sanity::check(
        &f.model,
        &observed.traces,
        &observed.interner,
        &observed.metrics,
        &SanityConfig::default(),
    );
    assert!(!report.events.is_empty(), "attack must raise an event");
    let event = report
        .events
        .iter()
        .max_by(|a, b| a.peak_score.partial_cmp(&b.peak_score).unwrap())
        .unwrap();
    // Event overlaps the attack interval.
    assert!(
        event.start_window < 132 && event.end_window > 120,
        "event {}..{} misses attack 120..132",
        event.start_window,
        event.end_window
    );
    // The throughput finding dominates, as in Fig. 19c.
    let top = &event.findings[0];
    assert_eq!(top.component, "PostStorageMongoDB");
    assert!(top.deviation_pct > 50.0);
    // The benign first day stays quiet.
    let early = report.overall.slice(0..96);
    let cfg = SanityConfig::default();
    let noisy = early
        .values()
        .iter()
        .filter(|&&s| s > cfg.score_threshold)
        .count();
    assert!(noisy <= 4, "benign day has {noisy} anomalous windows");
}

#[test]
fn masks_recover_api_resource_dependencies() {
    let f = fixture();
    // PostStorageMongoDB write IOps must be attributed to /composePost.
    let key = MetricKey::new("PostStorageMongoDB", ResourceKind::WriteIops);
    let attribution = interpret::api_attribution(&f.model, &key).unwrap();
    assert_eq!(attribution.top(), Some("/composePost"));
}

#[test]
fn model_round_trips_through_json() {
    let f = fixture();
    let json = f.model.to_json().unwrap();
    let restored = DeepRest::from_json(&json).unwrap();
    let query = f.learn_traffic.slice(0..48);
    let a = f.model.estimate_traffic(&query, 3);
    let b = restored.estimate_traffic(&query, 3);
    let key = MetricKey::new("FrontendNGINX", ResourceKind::Cpu);
    for (x, y) in a
        .get(&key)
        .unwrap()
        .expected
        .values()
        .iter()
        .zip(b.get(&key).unwrap().expected.values())
    {
        // JSON round-trips f32 parameters exactly; tiny f64 differences can
        // still arise downstream of the (de)serialized scalers.
        assert!((x - y).abs() < 1e-9, "round-trip drift: {x} vs {y}");
    }
}

#[test]
fn privacy_hashed_traces_train_equally_well() {
    // The paper's privacy-preserving mode: component/operation/API names
    // are hashed before DeepRest ingests them. Estimation quality must be
    // unaffected because only name equality matters.
    let app = apps::social_network();
    let learn_traffic = WorkloadSpec::new(120.0, app.default_mix())
        .with_days(3)
        .with_windows_per_day(96)
        .generate();
    let learn = simulate(&app, &learn_traffic, &SimConfig::default());

    // Hash every trace into an opaque namespace.
    let salt = 0xfeed;
    let mut hashed_interner = deeprest::trace::Interner::new();
    let mut hashed = deeprest::trace::window::WindowedTraces::with_windows(
        learn.traces.window_secs,
        learn.traces.len(),
    );
    for (t, window) in learn.traces.windows.iter().enumerate() {
        hashed.windows[t] = window
            .iter()
            .map(|tr| {
                deeprest::trace::hashing::anonymize_trace(
                    tr,
                    &learn.interner,
                    &mut hashed_interner,
                    salt,
                )
            })
            .collect();
    }
    // Metrics keys also hashed.
    let hash_name = |name: &str| deeprest::trace::hashing::opaque_name(name, salt);
    let key_plain = MetricKey::new("FrontendNGINX", ResourceKind::Cpu);
    let key_hashed = MetricKey::new(hash_name("FrontendNGINX"), ResourceKind::Cpu);
    let mut metrics = MetricsRegistry::new();
    metrics.insert(
        key_hashed.clone(),
        learn.metrics.get(&key_plain).unwrap().clone(),
    );

    let (model, _) = DeepRest::fit(
        &hashed,
        &metrics,
        &hashed_interner,
        DeepRestConfig::default()
            .with_epochs(20)
            .with_scope(vec![key_hashed.clone()]),
    );
    let est = model.estimate_from_traces(&hashed, &hashed_interner);
    let m = mape(
        learn.metrics.get(&key_plain).unwrap(),
        &est.get(&key_hashed).unwrap().expected,
    );
    assert!(m < 15.0, "hashed-mode in-sample MAPE {m:.1}%");
    // No plain-text component names leak into the model's interner.
    for (_, name) in model.interner().iter() {
        assert!(!name.contains("NGINX"), "leaked name {name}");
    }
}

/// The closed autoscaling loop through the facade: on the announced surge
/// the proactive what-if-driven policy strictly beats the reactive
/// threshold baseline on SLO-violation windows at equal-or-lower
/// provisioned cost, and a rerun reproduces the decision trace bit for
/// bit.
#[test]
fn proactive_autoscaler_beats_reactive_through_facade() {
    use deeprest::scale::{run_proactive, run_reactive, ScaleLoopConfig, Scenario, ScenarioKind};

    let scenario = Scenario::new(ScenarioKind::Surge);
    let model = scenario.train();
    let config = ScaleLoopConfig::default();
    let proactive = run_proactive(&model, &scenario, config).unwrap();
    let reactive = run_reactive(&model, &scenario, config).unwrap();

    assert!(
        proactive.slo_violation_windows < reactive.slo_violation_windows,
        "surge: proactive {} vs reactive {} violation windows",
        proactive.slo_violation_windows,
        reactive.slo_violation_windows
    );
    assert!(
        proactive.provisioned_cost <= reactive.provisioned_cost,
        "surge: proactive cost {} vs reactive {}",
        proactive.provisioned_cost,
        reactive.provisioned_cost
    );
    assert_eq!(proactive.estimate_errors, 0);

    let rerun = run_proactive(&model, &scenario, config).unwrap();
    assert_eq!(
        proactive.decisions, rerun.decisions,
        "decision trace replays"
    );
    assert_eq!(
        proactive.provisioned_cost.to_bits(),
        rerun.provisioned_cost.to_bits(),
        "provisioned cost replays bitwise"
    );
}
